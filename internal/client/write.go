package client

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"arbor/internal/core"
	"arbor/internal/obs"
	"arbor/internal/replica"
	"arbor/internal/rpc"
	"arbor/internal/transport"
)

// WriteResult is the outcome of a successful write quorum operation.
type WriteResult struct {
	// TS is the timestamp the value was installed with.
	TS replica.Timestamp
	// Level is the physical level (0-based index into the protocol's
	// physical levels) whose replicas form the write quorum.
	Level int
	// Contacts counts the replicas the operation accessed — the unit of
	// the paper's communication cost: version discovery plus every
	// replica a prepare was sent to (including aborted level attempts).
	// Second-phase commit/abort messages go to replicas already counted
	// by their prepare and are not counted again.
	Contacts int
}

// Write performs the protocol's write operation: it discovers the highest
// stored version through a version-read quorum (hedged by the quorum
// engine like a read), increments it, and runs two-phase commit on all
// physical nodes of one physical level. Levels are tried in the paper's
// uniform rotation, with levels containing a known-failing member
// deprioritized (their 2PC would stall on a timeout); per-operation
// options can pin the first level (WriteToLevel) or disable discovery
// hedging (WriteWithoutHedge).
func (c *Client) Write(ctx context.Context, key string, value []byte, opts ...WriteOption) (WriteResult, error) {
	proto := c.Protocol()
	cfg := writeConfig{read: c.readDefaults(), level: -1}
	for _, o := range opts {
		o.applyWrite(&cfg)
	}
	var order []int
	if cfg.level >= 0 {
		n := proto.NumPhysicalLevels()
		if cfg.level >= n {
			return WriteResult{}, fmt.Errorf("client: level %d outside [0,%d)", cfg.level, n)
		}
		order = make([]int, 0, n)
		for i := 0; i < n; i++ {
			order = append(order, (cfg.level+i)%n)
		}
	} else {
		order = c.orderedLevels(proto)
	}
	return c.writeWithOrder(ctx, key, value, proto, order, cfg.read)
}

// WriteAt performs a write preferring the given physical level's quorum
// (0-based index into the protocol's physical levels), falling back to the
// other levels only if that level cannot be fully prepared. Pinning hot
// keys' writes to a specific level (e.g. the client's local zone in a
// geo-replicated layout) trades the uniform strategy's balanced load for
// locality. It is shorthand for Write with WriteToLevel(level).
func (c *Client) WriteAt(ctx context.Context, key string, value []byte, level int) (WriteResult, error) {
	if level < 0 {
		return WriteResult{}, fmt.Errorf("client: level %d outside [0,%d)", level, c.Protocol().NumPhysicalLevels())
	}
	return c.Write(ctx, key, value, WriteToLevel(level))
}

// writeWithOrder runs the write protocol trying levels in the given order,
// with version discovery shaped by rcfg.
func (c *Client) writeWithOrder(ctx context.Context, key string, value []byte, proto *core.Protocol, order []int, rcfg readConfig) (res WriteResult, err error) {
	ctx, cancel := c.opCtx(ctx)
	defer cancel()
	c.budget.earnOp()
	op := c.traces.Start("write", key, c.id)
	var start time.Time
	if c.instr != nil {
		start = time.Now()
	}
	var contacts atomic.Uint64
	finish := func(outcome string, err error) {
		if c.instr != nil {
			c.instr.writeDur.Observe(time.Since(start))
			switch outcome {
			case obs.OutcomeOK:
				c.instr.writeOK.Inc()
			case obs.OutcomeInDoubt:
				c.instr.writeInDoubt.Inc()
			case obs.OutcomeUnavailable:
				c.instr.writeUnavailable.Inc()
			default:
				c.instr.ops.With("write", outcome).Inc()
			}
		}
		// The deferred contact accounting below runs after finish, so the
		// trace adds the in-flight 2PC contacts explicitly.
		op.Finish(outcome, err, res.Contacts+int(contacts.Load()))
	}

	// Phase 0 (§3.2.2): obtain the highest version number. This needs a
	// read-shaped quorum, so a write inherits the read operation's
	// availability requirement for its version-discovery step.
	ver, err := c.readQuorum(ctx, key, true, op, rcfg)
	res.Contacts += ver.Contacts
	if err != nil {
		c.metrics.writeFailures.Add(1)
		c.metrics.writeContacts.Add(uint64(ver.Contacts))
		err = fmt.Errorf("%w: version discovery: %w", ErrWriteUnavailable, err)
		finish(obs.OutcomeUnavailable, err)
		return res, err
	}
	ts := replica.Timestamp{Version: ver.TS.Version + 1, Site: c.id}

	defer func() {
		n := int(contacts.Load())
		res.Contacts += n
		c.metrics.writeContacts.Add(uint64(n))
	}()

	var lastErr error
	for i, u := range order {
		if i > 0 {
			// A next-level fallback is optional retry traffic: it spends a
			// retry-budget token, and when the bucket is dry the write stops
			// here with its honest outcome instead of amplifying load.
			if !c.budget.spend() {
				if c.instr != nil {
					c.instr.budgetDenied.Inc()
				}
				lastErr = fmt.Errorf("retry budget exhausted: %w", lastErr)
				break
			}
			if c.instr != nil {
				c.instr.levelFallbacks.Inc()
			}
			// Back off before attacking the next level: the failed attempt
			// usually means timeouts or contention, and an immediate retry
			// storm only feeds it. An overloaded member's retry-after hint
			// floors the sleep.
			floor, _ := rpc.RetryAfter(lastErr)
			if berr := c.backoff(ctx, i-1, "level", floor); berr != nil {
				if lastErr == nil {
					lastErr = berr
				}
				break
			}
		}
		err := c.writeLevel(ctx, proto, u, key, value, ts, &contacts, op)
		if err == nil {
			res.TS = ts
			res.Level = u
			c.metrics.writes.Add(1)
			finish(obs.OutcomeOK, nil)
			return res, nil
		}
		if errors.Is(err, ErrInDoubt) {
			// The decision was commit; report it rather than retrying
			// elsewhere and double-writing.
			res.TS = ts
			res.Level = u
			c.metrics.writes.Add(1)
			finish(obs.OutcomeInDoubt, err)
			return res, err
		}
		lastErr = err
		if ctx.Err() != nil {
			break
		}
	}
	c.metrics.writeFailures.Add(1)
	err = fmt.Errorf("%w: %w", ErrWriteUnavailable, lastErr)
	finish(obs.OutcomeUnavailable, err)
	return res, err
}

// writeLevel runs two-phase commit over every physical node of level u,
// recording the attempt (prepare, commit and abort contacts) on the trace.
func (c *Client) writeLevel(ctx context.Context, proto *core.Protocol, u int, key string, value []byte, ts replica.Timestamp, contacts *atomic.Uint64, op *obs.Op) error {
	sites := proto.LevelSites(u)
	addrs := make([]transport.Addr, len(sites))
	for i, s := range sites {
		addrs[i] = transport.Addr(s)
	}
	txID := c.txID.Add(1)
	span := op.Level(u, "write-2pc")

	// Replica accesses in phase two target the same quorum members phase
	// one already counted, so they accumulate into a throwaway counter.
	var uncounted atomic.Uint64

	// Phase 1: prepare everywhere, in parallel.
	checkPrepare := func(resp any) error {
		pr, ok := resp.(replica.PrepareResp)
		if !ok {
			return fmt.Errorf("unexpected response %T", resp)
		}
		if !pr.OK {
			return fmt.Errorf("prepare refused: %s", pr.Reason)
		}
		return nil
	}
	prepare := replica.PrepareReq{TxID: txID, Key: key, TS: ts}
	prepErrs := c.fanout(ctx, addrs, contacts, span, "prepare", prepare, checkPrepare)
	if prepErrs != nil && errors.Is(prepErrs, rpc.ErrBreakerOpen) && ctx.Err() == nil {
		// Rescue pass: a member's open breaker fast-failed the fanout. The
		// breaker must not cost availability the protocol would have had —
		// force the prepares through once before declaring the level dead.
		prepErrs = c.fanout(ctx, addrs, contacts, span, "prepare", prepare, checkPrepare, rpc.ForceProbe())
	}
	if prepErrs != nil {
		// Release whatever we locked and report the level as unusable.
		c.fanout(ctx, addrs, &uncounted, span, "abort",
			replica.AbortReq{TxID: txID, Key: key}, func(any) error { return nil })
		err := fmt.Errorf("level %d: %w", u, prepErrs)
		span.Done(false, err)
		return err
	}

	// Phase 2: all replicas prepared — the transaction is committed.
	// Push commits until everyone acknowledges or retries run out, backing
	// off between rounds. Commits always carry ForceProbe: every prepared
	// member must hear the decision, open breaker or not.
	remaining := addrs
	for attempt := 0; attempt <= c.commitRetries; attempt++ {
		if attempt > 0 {
			// A commit re-send spends a retry-budget token; with the bucket
			// dry the write reports in doubt now rather than storming. The
			// decision is durable on every replica that did acknowledge, and
			// lock expiry plus anti-entropy finish the stragglers.
			if !c.budget.spend() {
				if c.instr != nil {
					c.instr.budgetDenied.Inc()
				}
				break
			}
			if err := c.backoff(ctx, attempt-1, "commit", 0); err != nil {
				span.Done(false, err)
				return err
			}
		}
		var failed []transport.Addr
		var mu sync.Mutex
		err := c.fanoutCollect(ctx, remaining, &uncounted, span, "commit",
			replica.CommitReq{TxID: txID, Key: key, Value: value, TS: ts},
			func(addr transport.Addr, resp any, callErr error) {
				if callErr != nil {
					mu.Lock()
					failed = append(failed, addr)
					mu.Unlock()
				}
			}, rpc.ForceProbe())
		if err != nil {
			span.Done(false, err)
			return err
		}
		if len(failed) == 0 {
			span.Done(true, nil)
			return nil
		}
		remaining = failed
	}
	err := fmt.Errorf("level %d: %w", u, ErrInDoubt)
	span.Done(false, err)
	return err
}

// fanout sends one request to every address in parallel and returns the
// first validation or transport error (nil when all succeed). Breaker
// fast-fails are preferred as the reported error so callers can recognize
// a fanout that failed without actually probing some member.
func (c *Client) fanout(ctx context.Context, addrs []transport.Addr, contacts *atomic.Uint64, span *obs.LevelSpan, phase string, req rpc.Request, check func(resp any) error, copts ...rpc.CallOption) error {
	var firstErr error
	var mu sync.Mutex
	err := c.fanoutCollect(ctx, addrs, contacts, span, phase, req, func(addr transport.Addr, resp any, callErr error) {
		err := callErr
		if err == nil {
			err = check(resp)
		}
		if err != nil {
			mu.Lock()
			if firstErr == nil || (errors.Is(err, rpc.ErrBreakerOpen) && !errors.Is(firstErr, rpc.ErrBreakerOpen)) {
				firstErr = fmt.Errorf("site %d: %w", addr, err)
			}
			mu.Unlock()
		}
	}, copts...)
	if err != nil {
		return err
	}
	return firstErr
}

// fanoutCollect sends one request per address in parallel and invokes the
// callback with each outcome, recording every contact on the span. It
// returns an error only when the client is closed or the context is done
// before dispatch.
func (c *Client) fanoutCollect(ctx context.Context, addrs []transport.Addr, contacts *atomic.Uint64, span *obs.LevelSpan, phase string, req rpc.Request, done func(addr transport.Addr, resp any, err error), copts ...rpc.CallOption) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	traced := span.On()
	var wg sync.WaitGroup
	for _, addr := range addrs {
		wg.Add(1)
		go func(addr transport.Addr) {
			defer wg.Done()
			var cs time.Time
			if traced {
				cs = time.Now()
			}
			resp, err := c.call(ctx, addr, req, contacts, copts...)
			if traced {
				span.Contact(int(addr), phase, cs, time.Since(cs), err, errors.Is(err, rpc.ErrTimeout))
			}
			done(addr, resp, err)
		}(addr)
	}
	wg.Wait()
	return nil
}

// Ping probes one replica site, returning nil if it answers in time.
func (c *Client) Ping(ctx context.Context, site transport.Addr) error {
	ctx, cancel := c.opCtx(ctx)
	defer cancel()
	op := c.traces.Start("ping", "", c.id)
	var start time.Time
	if c.instr != nil {
		start = time.Now()
	}
	var contacts atomic.Uint64
	resp, err := c.call(ctx, site, replica.PingReq{}, &contacts)
	if err == nil {
		if _, ok := resp.(replica.PingResp); !ok {
			err = fmt.Errorf("client: unexpected ping response %T", resp)
		}
	}
	if c.instr != nil {
		c.instr.pingDur.Observe(time.Since(start))
		if err == nil {
			c.instr.pingOK.Inc()
		} else {
			c.instr.ops.With("ping", obs.OutcomeError).Inc()
		}
	}
	if err == nil {
		op.Finish(obs.OutcomeOK, nil, int(contacts.Load()))
	} else {
		op.Finish(obs.OutcomeError, err, int(contacts.Load()))
	}
	return err
}
