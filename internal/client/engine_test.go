package client

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"arbor/internal/core"
	"arbor/internal/obs"
	"arbor/internal/replica"
	"arbor/internal/transport"
	"arbor/internal/tree"
)

// newEngineHarness is newMemHarness with control over the transport, for
// engine tests that need message latency to make probes overlap.
func newEngineHarness(t *testing.T, spec string, netOpts []transport.Option, opts ...Option) *memHarness {
	t.Helper()
	tr, err := tree.ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	proto, err := core.New(tr)
	if err != nil {
		t.Fatal(err)
	}
	n := transport.NewNetwork(append([]transport.Option{transport.WithSeed(1)}, netOpts...)...)
	h := &memHarness{net: n, proto: proto}
	for _, site := range tr.Sites() {
		ep, err := n.Register(transport.Addr(site))
		if err != nil {
			t.Fatal(err)
		}
		r := replica.New(int(site), ep)
		r.Start()
		h.replicas = append(h.replicas, r)
	}
	cliEP, err := n.Register(-1)
	if err != nil {
		t.Fatal(err)
	}
	opts = append([]Option{WithTimeout(80 * time.Millisecond), WithSeed(1)}, opts...)
	h.cli = New(-1, cliEP, proto, opts...)
	t.Cleanup(func() {
		h.cli.Close()
		for _, r := range h.replicas {
			r.Stop()
		}
		n.Close()
	})
	return h
}

// replicaFor returns the harness replica running the given site address.
func (h *memHarness) replicaFor(t *testing.T, addr transport.Addr) *replica.Replica {
	t.Helper()
	for _, r := range h.replicas {
		if r.Site() == int(addr) {
			return r
		}
	}
	t.Fatalf("no replica for site %d", addr)
	return nil
}

// TestOrderedSitesDeterministicUnderSeed: two clients with the same seed
// (on independent networks) must produce identical probe orders call after
// call — the property that makes WithSeed runs reproducible even with the
// engine's exploration draws in the stream.
func TestOrderedSitesDeterministicUnderSeed(t *testing.T) {
	h1 := newMemHarness(t, "1-3-5", WithSeed(7))
	h2 := newMemHarness(t, "1-3-5", WithSeed(7))
	for i := 0; i < 200; i++ {
		u := i % h1.proto.NumPhysicalLevels()
		a := h1.cli.orderedSites(h1.proto, u)
		b := h2.cli.orderedSites(h2.proto, u)
		if len(a) != len(b) {
			t.Fatalf("call %d: lengths differ: %v vs %v", i, a, b)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("call %d: orders diverge: %v vs %v", i, a, b)
			}
		}
		la := h1.cli.orderedLevels(h1.proto)
		lb := h2.cli.orderedLevels(h2.proto)
		for j := range la {
			if la[j] != lb[j] {
				t.Fatalf("call %d: level orders diverge: %v vs %v", i, la, lb)
			}
		}
	}
}

// TestOrderedSitesDeprioritizesUnhealthy feeds the scoreboard a healthy, a
// failing and a very slow site: ordering must put the healthy site first
// and the failing site last in the vast majority of draws (exploration
// occasionally promotes a random candidate — that is by design).
func TestOrderedSitesDeprioritizesUnhealthy(t *testing.T) {
	h := newMemHarness(t, "1-3")
	sites := h.proto.LevelSites(0)
	healthy, failing, slow := transport.Addr(sites[0]), transport.Addr(sites[1]), transport.Addr(sites[2])
	for i := 0; i < 8; i++ {
		h.cli.scores.record(healthy, time.Millisecond, false)
		h.cli.scores.record(failing, time.Millisecond, true)
		h.cli.scores.record(slow, 50*time.Millisecond, false)
	}
	const draws = 200
	firstHealthy, lastFailing := 0, 0
	for i := 0; i < draws; i++ {
		out := h.cli.orderedSites(h.proto, 0)
		if out[0] == healthy {
			firstHealthy++
		}
		if out[len(out)-1] == failing {
			lastFailing++
		}
	}
	// Exploration fires on 1/16 of draws; everything else must follow the
	// learned order exactly.
	if firstHealthy < draws*8/10 {
		t.Errorf("healthy site first in only %d/%d draws", firstHealthy, draws)
	}
	if lastFailing < draws*8/10 {
		t.Errorf("failing site last in only %d/%d draws", lastFailing, draws)
	}
}

// TestOrderedLevelsDeprioritizesFailingMember: a level is as available as
// its least available member, so one failing site must sink its whole
// level to the back of the write rotation.
func TestOrderedLevelsDeprioritizesFailingMember(t *testing.T) {
	h := newMemHarness(t, "1-2-2")
	bad := transport.Addr(h.proto.LevelSites(0)[0])
	for i := 0; i < 8; i++ {
		h.cli.scores.record(bad, time.Millisecond, true)
	}
	for i := 0; i < 50; i++ {
		order := h.cli.orderedLevels(h.proto)
		if order[0] != 1 || order[len(order)-1] != 0 {
			t.Fatalf("draw %d: order = %v, want level 0 last", i, order)
		}
	}
}

// TestLevelHedgeDelayGating checks the three hedge gates: cold levels never
// hedge, the delay is floored at twice the level's best round-trip, and a
// floor at or above the client timeout disables hedging entirely.
func TestLevelHedgeDelayGating(t *testing.T) {
	h := newMemHarness(t, "1-2") // 80ms client timeout
	sites := h.proto.LevelSites(0)
	addrs := []transport.Addr{transport.Addr(sites[0]), transport.Addr(sites[1])}
	cfg := readConfig{hedge: true, hedgeDelay: 5 * time.Millisecond}

	if _, ok := h.cli.levelHedgeDelay(addrs, cfg); ok {
		t.Error("cold level must not hedge")
	}
	h.cli.scores.record(addrs[0], time.Millisecond, false)
	if d, ok := h.cli.levelHedgeDelay(addrs, cfg); !ok || d != 5*time.Millisecond {
		t.Errorf("warm level: delay = %v, %v; want 5ms, true", d, ok)
	}
	// A best round-trip of 10ms floors the 5ms configured delay to 20ms.
	h2 := newMemHarness(t, "1-2")
	for i := 0; i < 20; i++ {
		h2.cli.scores.record(addrs[0], 10*time.Millisecond, false)
	}
	if d, ok := h2.cli.levelHedgeDelay(addrs, cfg); !ok || d != 20*time.Millisecond {
		t.Errorf("floored delay = %v, %v; want 20ms, true", d, ok)
	}
	// A uniformly slow level (floor >= timeout) must not hedge at all.
	h3 := newMemHarness(t, "1-2")
	for i := 0; i < 20; i++ {
		h3.cli.scores.record(addrs[0], 60*time.Millisecond, false)
	}
	if _, ok := h3.cli.levelHedgeDelay(addrs, cfg); ok {
		t.Error("level with 2×best >= timeout must not hedge")
	}
}

// TestHedgedReadRescuesCrashedSite is the engine's acceptance scenario: with
// one site of a two-site level crashed, a warm hedging client's reads must
// complete at hedge-delay timescales, never waiting out the client timeout,
// and at least one level must be won by a hedge probe.
func TestHedgedReadRescuesCrashedSite(t *testing.T) {
	o := obs.NewObserver(8)
	h := newMemHarness(t, "1-2",
		WithTimeout(250*time.Millisecond), WithHedgeDelay(2*time.Millisecond), WithObserver(o))
	ctx := context.Background()
	if _, err := h.cli.Write(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	sites := h.proto.LevelSites(0)
	h.replicaFor(t, transport.Addr(sites[0])).Crash()
	// Seed both sites with equal warm scores (live warm-up traffic would
	// leave them in noise-dependent latency buckets): the shuffle keeps
	// picking the crashed site first about half the time, the hedge gate is
	// on, and the learned floor stays far below the hedge delay.
	for i := 0; i < 20; i++ {
		h.cli.scores.record(transport.Addr(sites[0]), 5*time.Microsecond, false)
		h.cli.scores.record(transport.Addr(sites[1]), 5*time.Microsecond, false)
	}

	for i := 0; i < 40; i++ {
		start := time.Now()
		rd, err := h.cli.Read(ctx, "k")
		if err != nil {
			t.Fatalf("read %d during outage: %v", i, err)
		}
		if string(rd.Value) != "v" {
			t.Fatalf("read %d = %q", i, rd.Value)
		}
		if d := time.Since(start); d > 100*time.Millisecond {
			t.Fatalf("read %d took %v — waited out the timeout instead of hedging", i, d)
		}
	}
	if h.cli.instr.hedges.Value() == 0 {
		t.Error("no hedge probes launched despite a crashed primary")
	}
	if h.cli.instr.hedgeWins.Value() == 0 {
		t.Error("no level won by a hedge probe despite a crashed primary")
	}
}

// TestReadCoalescing: concurrent reads of one key through one client must
// collapse into far fewer quorum assemblies than callers, while every
// caller still gets the value and its own metrics accounting.
func TestReadCoalescing(t *testing.T) {
	o := obs.NewObserver(64)
	h := newEngineHarness(t, "1-2-2",
		[]transport.Option{transport.WithLatency(2*time.Millisecond, 0)},
		WithTimeout(250*time.Millisecond), WithObserver(o))
	ctx := context.Background()
	if _, err := h.cli.Write(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	before := h.cli.Metrics()

	const callers = 16
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(callers)
	errs := make([]error, callers)
	vals := make([][]byte, callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer done.Done()
			start.Wait()
			rd, err := h.cli.Read(ctx, "k")
			errs[i], vals[i] = err, rd.Value
		}(i)
	}
	start.Done()
	done.Wait()

	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if string(vals[i]) != "v" {
			t.Fatalf("caller %d read %q", i, vals[i])
		}
	}
	after := h.cli.Metrics()
	if got := after.Reads - before.Reads; got != callers {
		t.Errorf("Reads delta = %d, want %d (every caller counts)", got, callers)
	}
	// Un-coalesced, 16 reads on two levels cost 32 contacts; coalesced
	// flights cost 2 each. Allow a few flights for scheduling skew.
	if delta := after.ReadContacts - before.ReadContacts; delta >= 2*callers {
		t.Errorf("ReadContacts delta = %d — reads did not coalesce", delta)
	}
	if h.cli.instr.coalesced.Value() == 0 {
		t.Error("no reads accounted as coalesced")
	}
}

// TestCoalescedValueIsolated: coalesced followers share the leader's value
// buffer zero-copy (ReadResult.Value documents it as read-only), so the
// isolation that matters is against the replica store — a caller scribbling
// on its result must not corrupt what later reads observe.
func TestCoalescedValueIsolated(t *testing.T) {
	h := newEngineHarness(t, "1-2",
		[]transport.Option{transport.WithLatency(2*time.Millisecond, 0)},
		WithTimeout(250*time.Millisecond))
	ctx := context.Background()
	if _, err := h.cli.Write(ctx, "k", []byte("abc")); err != nil {
		t.Fatal(err)
	}
	var start, done sync.WaitGroup
	start.Add(1)
	results := make([][]byte, 4)
	done.Add(len(results))
	for i := range results {
		go func(i int) {
			defer done.Done()
			start.Wait()
			rd, err := h.cli.Read(ctx, "k")
			if err == nil {
				results[i] = rd.Value
			}
		}(i)
	}
	start.Done()
	done.Wait()
	for i, r := range results {
		if string(r) != "abc" {
			t.Fatalf("caller %d read %q", i, r)
		}
	}
	// Violate the read-only contract on purpose: the scribble must stay in
	// the shared client-side buffer and never reach the replica store.
	results[0][0] = 'X'
	rd, err := h.cli.Read(ctx, "k", ReadWithoutHedge())
	if err != nil {
		t.Fatal(err)
	}
	if string(rd.Value) != "abc" {
		t.Fatalf("mutation leaked into the store: fresh read = %q", rd.Value)
	}
}

// TestPerOpReadWriteOptions exercises the per-operation options end to end:
// pinned write levels, out-of-range rejection, and hedge control per read
// and per write.
func TestPerOpReadWriteOptions(t *testing.T) {
	h := newMemHarness(t, "1-2-3")
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		wr, err := h.cli.Write(ctx, "k", []byte("v"), WriteToLevel(1))
		if err != nil {
			t.Fatal(err)
		}
		if wr.Level != 1 {
			t.Fatalf("write %d landed on level %d, want 1", i, wr.Level)
		}
	}
	if _, err := h.cli.Write(ctx, "k", []byte("v"), WriteToLevel(2)); err == nil {
		t.Error("WriteToLevel(2) on a 2-level protocol must fail")
	}
	if _, err := h.cli.WriteAt(ctx, "k", []byte("v"), -1); err == nil {
		t.Error("WriteAt(-1) must fail")
	}
	if _, err := h.cli.Write(ctx, "k", []byte("v2"), WriteWithoutHedge()); err != nil {
		t.Fatal(err)
	}
	rd, err := h.cli.Read(ctx, "k", ReadWithoutHedge())
	if err != nil || string(rd.Value) != "v2" {
		t.Fatalf("ReadWithoutHedge = %q, %v", rd.Value, err)
	}
	rd, err = h.cli.Read(ctx, "k", ReadWithHedgeDelay(time.Millisecond))
	if err != nil || string(rd.Value) != "v2" {
		t.Fatalf("ReadWithHedgeDelay = %q, %v", rd.Value, err)
	}
	// Zero-option reads and writes keep their original signatures.
	if _, err := h.cli.Write(ctx, "k2", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, err := h.cli.Read(ctx, "k2"); err != nil {
		t.Fatal(err)
	}
}

// TestScoreboardEWMA sanity-checks the fold: a step change in latency must
// move the estimate toward the new value without jumping to it, and the
// failure estimate must decay when a site recovers.
func TestScoreboardEWMA(t *testing.T) {
	s := newScoreboard()
	a := transport.Addr(1)
	s.record(a, 10*time.Millisecond, false)
	for i := 0; i < 3; i++ {
		s.record(a, 20*time.Millisecond, false)
	}
	e, ok := s.get(a)
	if !ok {
		t.Fatal("no score recorded")
	}
	if e.lat <= float64(10*time.Millisecond) || e.lat >= float64(20*time.Millisecond) {
		t.Errorf("latency EWMA %v outside (10ms, 20ms)", time.Duration(e.lat))
	}
	for i := 0; i < 4; i++ {
		s.record(a, 10*time.Millisecond, true)
	}
	if e, _ = s.get(a); failBucket(e.fail) == 0 {
		t.Errorf("failure EWMA %v still in the healthy bucket after 4 failures", e.fail)
	}
	for i := 0; i < 12; i++ {
		s.record(a, 10*time.Millisecond, false)
	}
	if e, _ = s.get(a); failBucket(e.fail) != 0 {
		t.Errorf("failure EWMA %v did not decay after recovery", e.fail)
	}
}

// TestHedgedVersionDiscovery: writes share the engine through version
// discovery — with a crashed site in a warm level, writes to the healthy
// level must stay fast instead of stalling on discovery.
func TestHedgedVersionDiscovery(t *testing.T) {
	h := newMemHarness(t, "1-2",
		WithTimeout(250*time.Millisecond), WithHedgeDelay(2*time.Millisecond))
	ctx := context.Background()
	if _, err := h.cli.Write(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := h.cli.Read(ctx, "k"); err != nil {
			t.Fatal(err)
		}
	}
	// "1-2" has one physical level; crashing one member kills the write
	// quorum, so use a second harness shape: two levels, crash in level 0,
	// pin writes to level 1.
	h2 := newMemHarness(t, "1-2-2",
		WithTimeout(250*time.Millisecond), WithHedgeDelay(2*time.Millisecond))
	if _, err := h2.cli.Write(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := h2.cli.Read(ctx, "k"); err != nil {
			t.Fatal(err)
		}
	}
	sites := h2.proto.LevelSites(0)
	h2.replicaFor(t, transport.Addr(sites[0])).Crash()
	for i := 0; i < 10; i++ {
		start := time.Now()
		if _, err := h2.cli.Write(ctx, fmt.Sprintf("w%d", i), []byte("v"), WriteToLevel(1)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		if d := time.Since(start); d > 120*time.Millisecond {
			t.Fatalf("write %d took %v — version discovery waited out the timeout", i, d)
		}
	}
}
