package client

import "sync"

// milliToken is the internal resolution of the retry budget: tokens are
// tracked in thousandths so fractional per-operation earn rates (the usual
// SRE-style "10% retry ratio") stay exact integers — no floating point, no
// wall clock, fully deterministic for a given operation/retry sequence.
const milliToken = 1000

// retryBudget is a deterministic token bucket capping the client's optional
// retry traffic: commit re-sends, next-level fallbacks and hedged backup
// probes. Each completed-or-started operation earns a fraction of a token;
// each retry action spends a whole one. When the bucket is empty the retry
// is simply not taken — the write reports its honest outcome (in doubt,
// unavailable) instead of amplifying load on a struggling system, and a
// denied hedge just leaves the sequential path to run. First attempts are
// never gated: the budget bounds amplification, not the work itself.
//
// A nil *retryBudget (budgets disabled, the default) admits everything.
type retryBudget struct {
	mu     sync.Mutex
	milli  int64 // current tokens, in milli-tokens
	burst  int64 // bucket capacity, in milli-tokens
	earn   int64 // milli-tokens earned per operation
	spent  uint64
	denied uint64
}

// newRetryBudget builds a bucket earning perOp tokens per operation with
// the given burst capacity, starting full (so a cold client can still ride
// out a small failure burst).
func newRetryBudget(perOp float64, burst int) *retryBudget {
	return &retryBudget{
		milli: int64(burst) * milliToken,
		burst: int64(burst) * milliToken,
		earn:  int64(perOp * milliToken),
	}
}

// earnOp credits one operation's worth of tokens, capped at the burst.
func (b *retryBudget) earnOp() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.milli += b.earn
	if b.milli > b.burst {
		b.milli = b.burst
	}
	b.mu.Unlock()
}

// spend consumes one token if available and reports whether the retry may
// proceed. A nil budget always admits.
func (b *retryBudget) spend() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.milli >= milliToken {
		b.milli -= milliToken
		b.spent++
		return true
	}
	b.denied++
	return false
}

// stats snapshots the tokens spent and retries denied so far.
func (b *retryBudget) stats() (spent, denied uint64) {
	if b == nil {
		return 0, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.spent, b.denied
}
