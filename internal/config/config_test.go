package config

import (
	"math"
	"testing"
)

func TestKindString(t *testing.T) {
	tests := []struct {
		kind Kind
		want string
	}{
		{Binary, "BINARY"},
		{Unmodified, "UNMODIFIED"},
		{Arbitrary, "ARBITRARY"},
		{HQC, "HQC"},
		{MostlyRead, "MOSTLY-READ"},
		{MostlyWrite, "MOSTLY-WRITE"},
		{Kind(99), "Kind(99)"},
	}
	for _, tt := range tests {
		if got := tt.kind.String(); got != tt.want {
			t.Errorf("Kind.String() = %q, want %q", got, tt.want)
		}
	}
	if len(Kinds()) != 6 {
		t.Errorf("Kinds() returned %d entries", len(Kinds()))
	}
}

func TestNewEachKind(t *testing.T) {
	for _, kind := range Kinds() {
		t.Run(kind.String(), func(t *testing.T) {
			cfg, err := New(kind, 100)
			if err != nil {
				t.Fatalf("New(%v, 100): %v", kind, err)
			}
			if cfg.Kind != kind {
				t.Errorf("Kind = %v", cfg.Kind)
			}
			if cfg.N() < 100 {
				t.Errorf("N = %d, want ≥ 100", cfg.N())
			}
			// Every configuration must produce sane analysis values.
			if cfg.ReadCost() < 1 || cfg.WriteCost() < 1 {
				t.Errorf("costs %v/%v below 1", cfg.ReadCost(), cfg.WriteCost())
			}
			for _, p := range []float64{0.6, 0.9} {
				for _, a := range []float64{cfg.ReadAvailability(p), cfg.WriteAvailability(p)} {
					if a < 0 || a > 1 {
						t.Errorf("availability %v outside [0,1]", a)
					}
				}
			}
			if l := cfg.ReadLoad(); l <= 0 || l > 1 {
				t.Errorf("read load %v outside (0,1]", l)
			}
			if l := cfg.WriteLoad(); l <= 0 || l > 1 {
				t.Errorf("write load %v outside (0,1]", l)
			}
		})
	}
}

func TestNewTreeBacked(t *testing.T) {
	for _, kind := range []Kind{Unmodified, Arbitrary, MostlyRead, MostlyWrite} {
		cfg, err := New(kind, 100)
		if err != nil {
			t.Fatalf("New(%v): %v", kind, err)
		}
		if cfg.Tree == nil {
			t.Errorf("%v should carry its tree", kind)
		}
	}
	for _, kind := range []Kind{Binary, HQC} {
		cfg, err := New(kind, 100)
		if err != nil {
			t.Fatalf("New(%v): %v", kind, err)
		}
		if cfg.Tree != nil {
			t.Errorf("%v should not carry a tree", kind)
		}
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(Arbitrary, 0); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := New(Kind(42), 10); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := New(Arbitrary, 10); err == nil {
		t.Error("Algorithm 1 for n=10 should fail")
	}
}

// TestPaperStatedFormulas pins the §4 closed forms for each configuration
// at n=255 (binary/unmodified natural size) and n=243 (HQC).
func TestPaperStatedFormulas(t *testing.T) {
	const tol = 1e-9

	bin, err := New(Binary, 255)
	if err != nil {
		t.Fatal(err)
	}
	h := math.Log2(float64(bin.N() + 1)) // = 8
	if got, want := bin.ReadLoad(), 2/(h+1); math.Abs(got-want) > tol {
		t.Errorf("BINARY load = %v, want 2/(log2(n+1)+1) = %v", got, want)
	}

	un, err := New(Unmodified, 255)
	if err != nil {
		t.Fatal(err)
	}
	logn := math.Log2(float64(un.N() + 1))
	if got := un.ReadLoad(); got != 1 {
		t.Errorf("UNMODIFIED read load = %v, want 1", got)
	}
	if got, want := un.WriteLoad(), 1/logn; math.Abs(got-want) > tol {
		t.Errorf("UNMODIFIED write load = %v, want 1/log2(n+1) = %v", got, want)
	}
	if got, want := un.ReadCost(), logn; math.Abs(got-want) > tol {
		t.Errorf("UNMODIFIED read cost = %v, want log2(n+1) = %v", got, want)
	}
	if got, want := un.WriteCost(), float64(un.N())/logn; math.Abs(got-want) > 1e-6 {
		t.Errorf("UNMODIFIED write cost = %v, want n/log2(n+1) = %v", got, want)
	}

	arb, err := New(Arbitrary, 256)
	if err != nil {
		t.Fatal(err)
	}
	s := math.Sqrt(256)
	if got := arb.ReadLoad(); math.Abs(got-0.25) > tol {
		t.Errorf("ARBITRARY read load = %v, want 1/4", got)
	}
	if got, want := arb.WriteLoad(), 1/s; math.Abs(got-want) > tol {
		t.Errorf("ARBITRARY write load = %v, want 1/√n = %v", got, want)
	}
	if got, want := arb.ReadCost(), s; math.Abs(got-want) > tol {
		t.Errorf("ARBITRARY read cost = %v, want √n = %v", got, want)
	}

	hqc, err := New(HQC, 243)
	if err != nil {
		t.Fatal(err)
	}
	nn := float64(hqc.N())
	if got, want := hqc.ReadCost(), math.Pow(nn, math.Log(2)/math.Log(3)); math.Abs(got-want) > 1e-6 {
		t.Errorf("HQC cost = %v, want n^0.63 = %v", got, want)
	}

	mr, err := New(MostlyRead, 101)
	if err != nil {
		t.Fatal(err)
	}
	if mr.ReadCost() != 1 || mr.WriteCost() != 101 {
		t.Errorf("MOSTLY-READ costs = %v/%v, want 1/101", mr.ReadCost(), mr.WriteCost())
	}
	if got, want := mr.ReadLoad(), 1.0/101; math.Abs(got-want) > tol {
		t.Errorf("MOSTLY-READ read load = %v, want 1/n", got)
	}
	if mr.WriteLoad() != 1 {
		t.Errorf("MOSTLY-READ write load = %v, want 1", mr.WriteLoad())
	}

	mw, err := New(MostlyWrite, 101)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := mw.ReadCost(), 50.0; got != want {
		t.Errorf("MOSTLY-WRITE read cost = %v, want (n−1)/2 = %v", got, want)
	}
	if got, want := mw.ReadLoad(), 0.5; math.Abs(got-want) > tol {
		t.Errorf("MOSTLY-WRITE read load = %v, want 1/2", got)
	}
	if got, want := mw.WriteLoad(), 2.0/100; math.Abs(got-want) > tol {
		t.Errorf("MOSTLY-WRITE write load = %v, want 2/(n−1) = %v", got, want)
	}
}

func TestMostlyWriteEvenNRoundsUp(t *testing.T) {
	cfg, err := New(MostlyWrite, 10)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.N() != 11 {
		t.Errorf("N = %d, want 11 (odd)", cfg.N())
	}
}

func TestNaturalSizes(t *testing.T) {
	bin := NaturalSizes(Binary, 300)
	want := []int{3, 7, 15, 31, 63, 127, 255}
	if len(bin) != len(want) {
		t.Fatalf("Binary sizes = %v, want %v", bin, want)
	}
	for i := range want {
		if bin[i] != want[i] {
			t.Fatalf("Binary sizes = %v, want %v", bin, want)
		}
	}
	hqc := NaturalSizes(HQC, 100)
	if len(hqc) != 4 || hqc[3] != 81 {
		t.Errorf("HQC sizes = %v, want [3 9 27 81]", hqc)
	}
	arb := NaturalSizes(Arbitrary, 100)
	if len(arb) == 0 || arb[0] < 64 {
		t.Errorf("Arbitrary sizes start at %v, want ≥ 64", arb)
	}
	if got := NaturalSizes(MostlyRead, 5); len(got) != 5 {
		t.Errorf("MostlyRead sizes = %v", got)
	}
	for _, n := range NaturalSizes(MostlyWrite, 20) {
		if n%2 == 0 {
			t.Errorf("MostlyWrite size %d is even", n)
		}
	}
	if got := NaturalSizes(Kind(9), 10); got != nil {
		t.Errorf("unknown kind sizes = %v, want nil", got)
	}
}
