// Package config assembles the six configurations compared in §4 of the
// paper — BINARY, UNMODIFIED, ARBITRARY, HQC, MOSTLY-READ and MOSTLY-WRITE —
// behind the shared analysis interface of package baseline, and provides a
// workload-aware advisor that picks a tree for a given read/write mix (the
// paper's "spectrum" tuning).
package config

import (
	"fmt"

	"arbor/internal/baseline"
	"arbor/internal/core"
	"arbor/internal/tree"
)

// Kind names one of the paper's six configurations.
type Kind int

// The six configurations of §4, in the paper's order.
const (
	Binary Kind = iota + 1
	Unmodified
	Arbitrary
	HQC
	MostlyRead
	MostlyWrite
)

// String returns the paper's name for the configuration.
func (k Kind) String() string {
	switch k {
	case Binary:
		return "BINARY"
	case Unmodified:
		return "UNMODIFIED"
	case Arbitrary:
		return "ARBITRARY"
	case HQC:
		return "HQC"
	case MostlyRead:
		return "MOSTLY-READ"
	case MostlyWrite:
		return "MOSTLY-WRITE"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Kinds lists all six configurations in the paper's order.
func Kinds() []Kind {
	return []Kind{Binary, Unmodified, Arbitrary, HQC, MostlyRead, MostlyWrite}
}

// Configuration is a named protocol configuration with its analysis. Tree is
// non-nil for the four configurations that run the arbitrary protocol over a
// replica tree (UNMODIFIED, ARBITRARY, MOSTLY-READ, MOSTLY-WRITE) and nil
// for the external baselines (BINARY, HQC).
type Configuration struct {
	baseline.Analyzer

	Kind Kind
	Tree *tree.Tree
}

// treeAnalyzer adapts a core.Analysis to the baseline.Analyzer interface.
type treeAnalyzer struct {
	name string
	a    core.Analysis
}

var _ baseline.Analyzer = treeAnalyzer{}

func (t treeAnalyzer) Name() string      { return t.name }
func (t treeAnalyzer) N() int            { return t.a.Tree().N() }
func (t treeAnalyzer) ReadCost() float64 { return float64(t.a.ReadCost) }
func (t treeAnalyzer) WriteCost() float64 {
	return t.a.WriteCostAvg
}
func (t treeAnalyzer) ReadLoad() float64                   { return t.a.ReadLoad }
func (t treeAnalyzer) WriteLoad() float64                  { return t.a.WriteLoad }
func (t treeAnalyzer) ReadAvailability(p float64) float64  { return t.a.ReadAvailability(p) }
func (t treeAnalyzer) WriteAvailability(p float64) float64 { return t.a.WriteAvailability(p) }

// FromTree wraps an arbitrary-protocol tree as a Configuration with the
// given display name.
func FromTree(kind Kind, name string, t *tree.Tree) Configuration {
	return Configuration{
		Analyzer: treeAnalyzer{name: name, a: core.Analyze(t)},
		Kind:     kind,
		Tree:     t,
	}
}

// New builds the configuration of the given kind for (approximately) n
// replicas. BINARY, UNMODIFIED and HQC only exist at their natural sizes
// (2^(h+1)−1 and 3^h); New picks the smallest natural size ≥ n for those
// kinds, so check Configuration.N() for the actual replica count.
func New(kind Kind, n int) (Configuration, error) {
	if n < 1 {
		return Configuration{}, fmt.Errorf("config: n must be positive, got %d", n)
	}
	switch kind {
	case Binary:
		tq, err := baseline.NewTreeQuorumForSize(n)
		if err != nil {
			return Configuration{}, err
		}
		return Configuration{Analyzer: tq, Kind: Binary}, nil
	case HQC:
		c, err := baseline.NewHQCForSize(n)
		if err != nil {
			return Configuration{}, err
		}
		return Configuration{Analyzer: c, Kind: HQC}, nil
	case Unmodified:
		h := 1
		for 1<<(h+1)-1 < n {
			h++
		}
		t, err := tree.CompleteBinary(h)
		if err != nil {
			return Configuration{}, err
		}
		return FromTree(Unmodified, "UNMODIFIED", t), nil
	case Arbitrary:
		t, err := tree.Algorithm1(n)
		if err != nil {
			return Configuration{}, err
		}
		return FromTree(Arbitrary, "ARBITRARY", t), nil
	case MostlyRead:
		t, err := tree.MostlyRead(n)
		if err != nil {
			return Configuration{}, err
		}
		return FromTree(MostlyRead, "MOSTLY-READ", t), nil
	case MostlyWrite:
		if n%2 == 0 {
			n++ // the paper analyzes odd-sized MOSTLY-WRITE systems
		}
		t, err := tree.MostlyWrite(n)
		if err != nil {
			return Configuration{}, err
		}
		return FromTree(MostlyWrite, "MOSTLY-WRITE", t), nil
	default:
		return Configuration{}, fmt.Errorf("config: unknown kind %v", kind)
	}
}

// NaturalSizes returns the replica counts at which the configuration exists
// natively, up to maxN. Tree-backed kinds exist at every n their builder
// accepts; BINARY and UNMODIFIED at 2^(h+1)−1; HQC at 3^h.
func NaturalSizes(kind Kind, maxN int) []int {
	var out []int
	switch kind {
	case Binary, Unmodified:
		for h := 1; ; h++ {
			n := 1<<(h+1) - 1
			if n > maxN {
				return out
			}
			out = append(out, n)
		}
	case HQC:
		for n := 3; n <= maxN; n *= 3 {
			out = append(out, n)
		}
		return out
	case Arbitrary:
		for n := 64; n <= maxN; n++ {
			if _, err := tree.Algorithm1(n); err == nil {
				out = append(out, n)
			}
		}
		return out
	case MostlyRead:
		for n := 1; n <= maxN; n++ {
			out = append(out, n)
		}
		return out
	case MostlyWrite:
		for n := 3; n <= maxN; n += 2 {
			out = append(out, n)
		}
		return out
	default:
		return nil
	}
}
