package config

import (
	"testing"
	"testing/quick"
)

func TestAdviseReadHeavyPicksFewLevels(t *testing.T) {
	// A 95%-read workload should collapse towards MOSTLY-READ: one (or very
	// few) physical levels.
	adv, err := Advise(100, 0.9, 0.95, MinimizeLoad)
	if err != nil {
		t.Fatal(err)
	}
	if got := adv.Tree.NumPhysicalLevels(); got > 2 {
		t.Errorf("read-heavy advice has %d physical levels, want ≤ 2 (%s)", got, adv.Tree.Spec())
	}
}

func TestAdviseWriteHeavyPicksManyLevels(t *testing.T) {
	// A 95%-write workload should stretch towards MOSTLY-WRITE.
	adv, err := Advise(100, 0.9, 0.05, MinimizeLoad)
	if err != nil {
		t.Fatal(err)
	}
	if got := adv.Tree.NumPhysicalLevels(); got < 20 {
		t.Errorf("write-heavy advice has %d physical levels, want ≥ 20 (%s)", got, adv.Tree.Spec())
	}
}

func TestAdviseCostObjective(t *testing.T) {
	// Balanced cost objective at 50/50 should land near √n levels: read
	// cost ℓ, write cost n/ℓ, and ℓ+n/ℓ is minimized at ℓ=√n.
	adv, err := Advise(100, 0.9, 0.5, MinimizeCost)
	if err != nil {
		t.Fatal(err)
	}
	l := adv.Tree.NumPhysicalLevels()
	if l < 7 || l > 14 {
		t.Errorf("balanced cost advice has %d levels, want ≈ 10 (%s)", l, adv.Tree.Spec())
	}
}

func TestAdviseProductObjective(t *testing.T) {
	adv, err := Advise(64, 0.9, 0.5, MinimizeLoadCostProduct)
	if err != nil {
		t.Fatal(err)
	}
	if adv.Tree == nil || adv.Score <= 0 {
		t.Errorf("advice = %+v", adv)
	}
}

func TestAdviseErrors(t *testing.T) {
	if _, err := Advise(0, 0.9, 0.5, MinimizeLoad); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := Advise(10, 0, 0.5, MinimizeLoad); err == nil {
		t.Error("p=0 accepted")
	}
	if _, err := Advise(10, 1.5, 0.5, MinimizeLoad); err == nil {
		t.Error("p>1 accepted")
	}
	if _, err := Advise(10, 0.9, -0.1, MinimizeLoad); err == nil {
		t.Error("negative read fraction accepted")
	}
	if _, err := Advise(10, 0.9, 1.1, MinimizeLoad); err == nil {
		t.Error("read fraction > 1 accepted")
	}
	if _, err := Advise(10, 0.9, 0.5, Objective(9)); err == nil {
		t.Error("unknown objective accepted")
	}
}

func TestObjectiveString(t *testing.T) {
	if MinimizeLoad.String() != "load" || MinimizeCost.String() != "cost" ||
		MinimizeLoadCostProduct.String() != "load*cost" {
		t.Error("objective names changed")
	}
	if Objective(9).String() != "Objective(9)" {
		t.Error("unknown objective string")
	}
}

// TestQuickAdviseAlwaysValid: for random inputs the advisor returns a tree
// with exactly n replicas that satisfies Assumption 3.1, and its score is
// never worse than the single-level (MOSTLY-READ) candidate.
func TestQuickAdviseAlwaysValid(t *testing.T) {
	property := func(rawN uint8, rawF, rawP uint8) bool {
		n := 2 + int(rawN)%150
		f := float64(rawF%101) / 100
		p := 0.5 + float64(rawP%50)/100
		adv, err := Advise(n, p, f, MinimizeLoad)
		if err != nil {
			t.Logf("Advise(%d, %v, %v): %v", n, p, f, err)
			return false
		}
		if adv.Tree.N() != n {
			t.Logf("advice for n=%d returned tree with %d replicas", n, adv.Tree.N())
			return false
		}
		single := score(adv.Analysis, p, f, MinimizeLoad)
		return single <= 1.0001 // loads never exceed 1
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
