package config

import (
	"fmt"
	"math"

	"arbor/internal/core"
	"arbor/internal/tree"
)

// Objective selects what the advisor minimizes.
type Objective int

const (
	// MinimizeLoad picks the tree with the smallest workload-weighted
	// expected system load (Equation 3.2 at the given p).
	MinimizeLoad Objective = iota + 1
	// MinimizeCost picks the tree with the smallest workload-weighted
	// communication cost.
	MinimizeCost
	// MinimizeLoadCostProduct balances the two by minimizing the product
	// of the weighted load and weighted cost.
	MinimizeLoadCostProduct
)

// String names the objective.
func (o Objective) String() string {
	switch o {
	case MinimizeLoad:
		return "load"
	case MinimizeCost:
		return "cost"
	case MinimizeLoadCostProduct:
		return "load*cost"
	default:
		return fmt.Sprintf("Objective(%d)", int(o))
	}
}

// Advice is the advisor's recommendation: the chosen tree, its analysis,
// and the objective score it achieved.
type Advice struct {
	Tree     *tree.Tree
	Analysis core.Analysis
	Score    float64
}

// Advise picks a tree shape for n replicas given the fraction of operations
// that are reads (readFraction ∈ [0,1]) and a per-replica availability p.
// It realizes the paper's "spectrum" idea mechanically: it sweeps the
// number of physical levels ℓ from 1 (MOSTLY-READ) towards n/2
// (MOSTLY-WRITE), splitting replicas into non-decreasing level sizes, adds
// Algorithm 1 as a candidate when applicable, and returns the tree
// minimizing the objective.
func Advise(n int, p, readFraction float64, obj Objective) (Advice, error) {
	if n < 1 {
		return Advice{}, fmt.Errorf("config: n must be positive, got %d", n)
	}
	if p <= 0 || p > 1 {
		return Advice{}, fmt.Errorf("config: availability p=%v outside (0,1]", p)
	}
	if readFraction < 0 || readFraction > 1 {
		return Advice{}, fmt.Errorf("config: read fraction %v outside [0,1]", readFraction)
	}
	switch obj {
	case MinimizeLoad, MinimizeCost, MinimizeLoadCostProduct:
	default:
		return Advice{}, fmt.Errorf("config: unknown objective %v", obj)
	}

	var candidates []*tree.Tree
	maxLevels := n / 2
	if maxLevels < 1 {
		maxLevels = 1
	}
	for levels := 1; levels <= maxLevels; levels++ {
		t, err := levelledTree(n, levels)
		if err != nil {
			continue
		}
		candidates = append(candidates, t)
	}
	if t, err := tree.Algorithm1(n); err == nil {
		candidates = append(candidates, t)
	}
	if len(candidates) == 0 {
		return Advice{}, fmt.Errorf("config: no feasible tree for n=%d", n)
	}

	best := Advice{Score: math.Inf(1)}
	for _, t := range candidates {
		a := core.Analyze(t)
		score := score(a, p, readFraction, obj)
		if score < best.Score {
			best = Advice{Tree: t, Analysis: a, Score: score}
		}
	}
	return best, nil
}

// Score evaluates the advisor objective for an already-analyzed tree — the
// same formula Advise minimizes, exposed so callers (the adaptation
// controller) can compare the incumbent configuration's score against an
// advised one instead of re-running the sweep.
func Score(a core.Analysis, p, readFraction float64, obj Objective) (float64, error) {
	if p <= 0 || p > 1 {
		return 0, fmt.Errorf("config: availability p=%v outside (0,1]", p)
	}
	if readFraction < 0 || readFraction > 1 {
		return 0, fmt.Errorf("config: read fraction %v outside [0,1]", readFraction)
	}
	switch obj {
	case MinimizeLoad, MinimizeCost, MinimizeLoadCostProduct:
	default:
		return 0, fmt.Errorf("config: unknown objective %v", obj)
	}
	return score(a, p, readFraction, obj), nil
}

// score computes the advisor objective for one analysis.
func score(a core.Analysis, p, readFraction float64, obj Objective) float64 {
	load := readFraction*a.ExpectedReadLoad(p) + (1-readFraction)*a.ExpectedWriteLoad(p)
	cost := readFraction*float64(a.ReadCost) + (1-readFraction)*a.WriteCostAvg
	switch obj {
	case MinimizeLoad:
		return load
	case MinimizeCost:
		return cost
	default:
		return load * cost
	}
}

// levelledTree splits n replicas over the given number of physical levels in
// non-decreasing sizes under a logical root (Assumption 3.1).
func levelledTree(n, levels int) (*tree.Tree, error) {
	if levels < 1 {
		return nil, fmt.Errorf("config: level count %d must be positive", levels)
	}
	if levels > 1 && n/levels < 2 {
		return nil, fmt.Errorf("config: cannot split %d replicas over %d levels of ≥2", n, levels)
	}
	base := n / levels
	extra := n % levels
	counts := make([]int, levels)
	for i := range counts {
		counts[i] = base
		if i >= levels-extra {
			counts[i]++
		}
	}
	if counts[0] < 1 || (levels > 1 && counts[0] < 2) {
		return nil, fmt.Errorf("config: level sizes too small for n=%d levels=%d", n, levels)
	}
	t, err := tree.PhysicalLevelSizes(counts...)
	if err != nil {
		return nil, err
	}
	if err := tree.ValidateAssumption31(t); err != nil {
		return nil, err
	}
	return t, nil
}
