// Package quorum provides the set-system machinery of quorum-based replica
// control: quorum systems, coteries and bi-coteries (Definitions 2.1–2.3 of
// the paper), strategies and the load they induce (Definitions 2.4–2.5), the
// optimal system load, and availability under independent replica failures.
//
// Universe elements are integers in [0, n); callers map replica site IDs
// onto them.
package quorum

import (
	"errors"
	"fmt"
	"sort"
)

// Set is a quorum: a sorted, duplicate-free set of universe elements.
type Set []int

// NewSet builds a Set from the given elements, sorting and de-duplicating.
func NewSet(elems ...int) Set {
	s := make(Set, len(elems))
	copy(s, elems)
	sort.Ints(s)
	out := s[:0]
	for i, e := range s {
		if i == 0 || e != s[i-1] {
			out = append(out, e)
		}
	}
	return out
}

// Contains reports whether e is a member of the set.
func (s Set) Contains(e int) bool {
	i := sort.SearchInts(s, e)
	return i < len(s) && s[i] == e
}

// Intersects reports whether the two sets share an element.
func (s Set) Intersects(o Set) bool {
	i, j := 0, 0
	for i < len(s) && j < len(o) {
		switch {
		case s[i] == o[j]:
			return true
		case s[i] < o[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// SubsetOf reports whether every element of s is in o.
func (s Set) SubsetOf(o Set) bool {
	j := 0
	for _, e := range s {
		for j < len(o) && o[j] < e {
			j++
		}
		if j >= len(o) || o[j] != e {
			return false
		}
	}
	return true
}

// System is a set system over a finite universe of n elements.
type System struct {
	n       int
	quorums []Set
}

// NewSystem validates and builds a set system. Every quorum must be
// non-empty with elements inside [0, n).
func NewSystem(n int, quorums []Set) (*System, error) {
	if n <= 0 {
		return nil, fmt.Errorf("quorum: universe size %d must be positive", n)
	}
	if len(quorums) == 0 {
		return nil, errors.New("quorum: no quorums")
	}
	qs := make([]Set, len(quorums))
	for i, q := range quorums {
		if len(q) == 0 {
			return nil, fmt.Errorf("quorum: quorum %d is empty", i)
		}
		qq := NewSet(q...)
		if qq[0] < 0 || qq[len(qq)-1] >= n {
			return nil, fmt.Errorf("quorum: quorum %d has elements outside [0,%d)", i, n)
		}
		qs[i] = qq
	}
	return &System{n: n, quorums: qs}, nil
}

// N returns the universe size.
func (s *System) N() int { return s.n }

// Len returns the number of quorums, m(S).
func (s *System) Len() int { return len(s.quorums) }

// Quorum returns the j-th quorum. The returned set must not be mutated.
func (s *System) Quorum(j int) Set { return s.quorums[j] }

// Quorums returns all quorums. The returned slice must not be mutated.
func (s *System) Quorums() []Set { return s.quorums }

// MinQuorumSize returns the size of the smallest quorum, c(S).
func (s *System) MinQuorumSize() int {
	min := len(s.quorums[0])
	for _, q := range s.quorums[1:] {
		if len(q) < min {
			min = len(q)
		}
	}
	return min
}

// MaxQuorumSize returns the size of the largest quorum.
func (s *System) MaxQuorumSize() int {
	max := 0
	for _, q := range s.quorums {
		if len(q) > max {
			max = len(q)
		}
	}
	return max
}

// IsIntersecting reports whether the system has the intersection property of
// Definition 2.1 (every pair of quorums shares an element).
func (s *System) IsIntersecting() bool {
	for i := range s.quorums {
		for j := i + 1; j < len(s.quorums); j++ {
			if !s.quorums[i].Intersects(s.quorums[j]) {
				return false
			}
		}
	}
	return true
}

// IsCoterie reports whether the system is a coterie (Definition 2.2): an
// intersecting system where no quorum contains another.
func (s *System) IsCoterie() bool {
	if !s.IsIntersecting() {
		return false
	}
	for i := range s.quorums {
		for j := range s.quorums {
			if i != j && s.quorums[i].SubsetOf(s.quorums[j]) {
				return false
			}
		}
	}
	return true
}

// BiCoterie pairs a read and a write quorum system over the same universe
// (Definition 2.3).
type BiCoterie struct {
	Reads  *System
	Writes *System
}

// Validate checks that the two systems share a universe and that every read
// quorum intersects every write quorum.
func (b BiCoterie) Validate() error {
	if b.Reads == nil || b.Writes == nil {
		return errors.New("quorum: bicoterie needs both read and write systems")
	}
	if b.Reads.N() != b.Writes.N() {
		return fmt.Errorf("quorum: universe mismatch (%d reads vs %d writes)", b.Reads.N(), b.Writes.N())
	}
	for i, r := range b.Reads.quorums {
		for j, w := range b.Writes.quorums {
			if !r.Intersects(w) {
				return fmt.Errorf("quorum: read quorum %d (%v) misses write quorum %d (%v)", i, r, j, w)
			}
		}
	}
	return nil
}

// Minimize returns a new system containing only the minimal quorums of s
// (those not containing another quorum), de-duplicated — the coterie
// underlying a redundant quorum list. Load and availability are unchanged
// by removing dominated quorums, which an optimal strategy never picks.
func Minimize(s *System) (*System, error) {
	var minimal []Set
	for i, q := range s.quorums {
		dominated := false
		for j, other := range s.quorums {
			if i == j {
				continue
			}
			if other.SubsetOf(q) && (len(other) < len(q) || j < i) {
				dominated = true
				break
			}
		}
		if !dominated {
			minimal = append(minimal, q)
		}
	}
	return NewSystem(s.n, minimal)
}
