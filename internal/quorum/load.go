package quorum

import (
	"errors"
	"fmt"
	"math"

	"arbor/internal/lp"
)

// Strategy is a probability distribution over a system's quorums
// (Definition 2.4): Strategy[j] is the probability of picking quorum j.
type Strategy []float64

// Uniform returns the uniform strategy over m quorums.
func Uniform(m int) Strategy {
	w := make(Strategy, m)
	for i := range w {
		w[i] = 1 / float64(m)
	}
	return w
}

// Validate checks that the weights are non-negative and sum to one.
func (w Strategy) Validate() error {
	sum := 0.0
	for j, wj := range w {
		if wj < -1e-12 {
			return fmt.Errorf("quorum: strategy weight %d is negative (%g)", j, wj)
		}
		sum += wj
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("quorum: strategy weights sum to %g, want 1", sum)
	}
	return nil
}

// ElementLoads returns l_w(i) for every universe element i: the total
// probability of quorums containing i under strategy w (Definition 2.5).
func ElementLoads(s *System, w Strategy) ([]float64, error) {
	if len(w) != s.Len() {
		return nil, fmt.Errorf("quorum: strategy has %d weights for %d quorums", len(w), s.Len())
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	loads := make([]float64, s.n)
	for j, q := range s.quorums {
		for _, e := range q {
			loads[e] += w[j]
		}
	}
	return loads, nil
}

// InducedLoad returns L_w(S) = max_i l_w(i), the system load induced by
// strategy w.
func InducedLoad(s *System, w Strategy) (float64, error) {
	loads, err := ElementLoads(s, w)
	if err != nil {
		return 0, err
	}
	max := 0.0
	for _, l := range loads {
		if l > max {
			max = l
		}
	}
	return max, nil
}

// OptimalLoad computes the system load L(S) = min_w L_w(S) exactly by
// solving Naor & Wool's load LP with the simplex solver:
//
//	minimize L   s.t.  Σ_j w_j = 1,  ∀i: Σ_{j: i∈S_j} w_j ≤ L,  w ≥ 0
//
// It returns the optimal load together with an optimal strategy. The LP has
// m(S)+1 variables and n+1 constraints, so this is only intended for
// modestly sized systems (a few thousand quorums).
func OptimalLoad(s *System) (float64, Strategy, error) {
	m := s.Len()
	if m > 5000 {
		return 0, nil, fmt.Errorf("quorum: system with %d quorums too large for exact LP", m)
	}
	nvars := m + 1 // w_1..w_m, L
	c := make([]float64, nvars)
	c[m] = 1 // minimize L

	eq := make([]float64, nvars)
	for j := 0; j < m; j++ {
		eq[j] = 1
	}

	aub := make([][]float64, 0, s.n)
	bub := make([]float64, 0, s.n)
	for i := 0; i < s.n; i++ {
		row := make([]float64, nvars)
		any := false
		for j, q := range s.quorums {
			if q.Contains(i) {
				row[j] = 1
				any = true
			}
		}
		if !any {
			continue // element in no quorum never carries load
		}
		row[m] = -1
		aub = append(aub, row)
		bub = append(bub, 0)
	}

	sol, err := lp.Solve(lp.Problem{
		C:   c,
		Aeq: [][]float64{eq},
		Beq: []float64{1},
		Aub: aub,
		Bub: bub,
	})
	if err != nil {
		return 0, nil, fmt.Errorf("quorum: load LP: %w", err)
	}
	w := make(Strategy, m)
	copy(w, sol.X[:m])
	return sol.Value, w, nil
}

// VerifyLowerBoundCertificate checks a Proposition 2.1 certificate: a vector
// y ∈ [0,1]^n with y(U) = 1 and y(S) ≥ L for every quorum S proves that the
// optimal load is at least L. A nil error means the certificate is valid.
func VerifyLowerBoundCertificate(s *System, y []float64, load float64) error {
	if len(y) != s.n {
		return fmt.Errorf("quorum: certificate has %d entries for universe of %d", len(y), s.n)
	}
	sum := 0.0
	for i, yi := range y {
		if yi < -1e-12 || yi > 1+1e-12 {
			return fmt.Errorf("quorum: certificate entry %d = %g outside [0,1]", i, yi)
		}
		sum += yi
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("quorum: certificate sums to %g, want 1", sum)
	}
	for j, q := range s.quorums {
		v := 0.0
		for _, e := range q {
			v += y[e]
		}
		if v < load-1e-9 {
			return fmt.Errorf("quorum: y(S_%d) = %g < load %g", j, v, load)
		}
	}
	return nil
}

// ErrTooLarge is returned by ExactAvailability for universes too big to
// enumerate.
var ErrTooLarge = errors.New("quorum: universe too large for exact enumeration")

// ExactAvailability computes the probability that at least one quorum has
// all members alive, when each element is independently alive with
// probability p, by enumerating all 2^n world states. n must be ≤ 24.
func ExactAvailability(s *System, p float64) (float64, error) {
	if s.n > 24 {
		return 0, ErrTooLarge
	}
	masks := make([]uint64, s.Len())
	for j, q := range s.quorums {
		var m uint64
		for _, e := range q {
			m |= 1 << uint(e)
		}
		masks[j] = m
	}
	total := 0.0
	states := uint64(1) << uint(s.n)
	for state := uint64(0); state < states; state++ {
		alive := false
		for _, m := range masks {
			if state&m == m {
				alive = true
				break
			}
		}
		if !alive {
			continue
		}
		prob := 1.0
		for i := 0; i < s.n; i++ {
			if state&(1<<uint(i)) != 0 {
				prob *= p
			} else {
				prob *= 1 - p
			}
		}
		total += prob
	}
	return total, nil
}
