package quorum

import (
	"math"
	"testing"
)

func mustSystem(t *testing.T, n int, qs []Set) *System {
	t.Helper()
	s, err := NewSystem(n, qs)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	return s
}

func TestNewSet(t *testing.T) {
	s := NewSet(3, 1, 2, 1, 3)
	want := []int{1, 2, 3}
	if len(s) != len(want) {
		t.Fatalf("NewSet = %v, want %v", s, want)
	}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("NewSet = %v, want %v", s, want)
		}
	}
	if !s.Contains(2) || s.Contains(0) || s.Contains(4) {
		t.Error("Contains misbehaves")
	}
}

func TestSetIntersects(t *testing.T) {
	tests := []struct {
		a, b Set
		want bool
	}{
		{NewSet(1, 2), NewSet(2, 3), true},
		{NewSet(1, 2), NewSet(3, 4), false},
		{NewSet(), NewSet(1), false},
		{NewSet(5), NewSet(5), true},
		{NewSet(1, 3, 5), NewSet(0, 2, 4), false},
	}
	for _, tt := range tests {
		if got := tt.a.Intersects(tt.b); got != tt.want {
			t.Errorf("%v ∩ %v = %v, want %v", tt.a, tt.b, got, tt.want)
		}
		if got := tt.b.Intersects(tt.a); got != tt.want {
			t.Errorf("intersection not symmetric for %v, %v", tt.a, tt.b)
		}
	}
}

func TestSubsetOf(t *testing.T) {
	tests := []struct {
		a, b Set
		want bool
	}{
		{NewSet(1), NewSet(1, 2), true},
		{NewSet(1, 2), NewSet(1, 2), true},
		{NewSet(1, 3), NewSet(1, 2), false},
		{NewSet(), NewSet(1), true},
	}
	for _, tt := range tests {
		if got := tt.a.SubsetOf(tt.b); got != tt.want {
			t.Errorf("%v ⊆ %v = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(0, []Set{NewSet(0)}); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewSystem(3, nil); err == nil {
		t.Error("no quorums accepted")
	}
	if _, err := NewSystem(3, []Set{{}}); err == nil {
		t.Error("empty quorum accepted")
	}
	if _, err := NewSystem(3, []Set{NewSet(3)}); err == nil {
		t.Error("out-of-range element accepted")
	}
	if _, err := NewSystem(3, []Set{NewSet(-1)}); err == nil {
		t.Error("negative element accepted")
	}
}

func TestIsIntersectingAndCoterie(t *testing.T) {
	// Majority-of-3: a coterie.
	maj := mustSystem(t, 3, []Set{NewSet(0, 1), NewSet(0, 2), NewSet(1, 2)})
	if !maj.IsIntersecting() || !maj.IsCoterie() {
		t.Error("majority-of-3 should be an intersecting coterie")
	}
	// Adding the full set breaks minimality but not intersection.
	dom := mustSystem(t, 3, []Set{NewSet(0, 1), NewSet(0, 2), NewSet(1, 2), NewSet(0, 1, 2)})
	if !dom.IsIntersecting() {
		t.Error("dominated system should still intersect")
	}
	if dom.IsCoterie() {
		t.Error("dominated system must not be a coterie")
	}
	// Disjoint singletons do not intersect.
	disj := mustSystem(t, 2, []Set{NewSet(0), NewSet(1)})
	if disj.IsIntersecting() {
		t.Error("disjoint system reported intersecting")
	}
}

func TestBiCoterieValidate(t *testing.T) {
	reads := mustSystem(t, 4, []Set{NewSet(0, 2), NewSet(0, 3), NewSet(1, 2), NewSet(1, 3)})
	writes := mustSystem(t, 4, []Set{NewSet(0, 1), NewSet(2, 3)})
	if err := (BiCoterie{Reads: reads, Writes: writes}).Validate(); err != nil {
		t.Errorf("valid bicoterie rejected: %v", err)
	}
	badWrites := mustSystem(t, 4, []Set{NewSet(0, 1), NewSet(3)})
	if err := (BiCoterie{Reads: reads, Writes: badWrites}).Validate(); err == nil {
		t.Error("invalid bicoterie accepted")
	}
	if err := (BiCoterie{Reads: reads}).Validate(); err == nil {
		t.Error("nil writes accepted")
	}
	other := mustSystem(t, 5, []Set{NewSet(0, 1, 2, 3, 4)})
	if err := (BiCoterie{Reads: reads, Writes: other}).Validate(); err == nil {
		t.Error("universe mismatch accepted")
	}
}

func TestMinMaxQuorumSize(t *testing.T) {
	s := mustSystem(t, 5, []Set{NewSet(0), NewSet(1, 2, 3), NewSet(2, 4)})
	if s.MinQuorumSize() != 1 || s.MaxQuorumSize() != 3 {
		t.Errorf("min=%d max=%d, want 1 and 3", s.MinQuorumSize(), s.MaxQuorumSize())
	}
}

func TestUniformStrategyAndInducedLoad(t *testing.T) {
	// ROWA reads on 4 elements: singletons; uniform strategy loads 1/4.
	qs := []Set{NewSet(0), NewSet(1), NewSet(2), NewSet(3)}
	s := mustSystem(t, 4, qs)
	w := Uniform(s.Len())
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	load, err := InducedLoad(s, w)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(load-0.25) > 1e-12 {
		t.Errorf("load = %v, want 0.25", load)
	}
}

func TestStrategyValidate(t *testing.T) {
	if err := (Strategy{0.5, 0.4}).Validate(); err == nil {
		t.Error("non-normalized strategy accepted")
	}
	if err := (Strategy{1.5, -0.5}).Validate(); err == nil {
		t.Error("negative weight accepted")
	}
	if err := (Strategy{0.25, 0.75}).Validate(); err != nil {
		t.Errorf("valid strategy rejected: %v", err)
	}
}

func TestElementLoadsErrors(t *testing.T) {
	s := mustSystem(t, 2, []Set{NewSet(0), NewSet(1)})
	if _, err := ElementLoads(s, Strategy{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := InducedLoad(s, Strategy{0.9, 0.9}); err == nil {
		t.Error("invalid strategy accepted")
	}
}

func TestOptimalLoadMajority(t *testing.T) {
	// Majority-of-3 has optimal load 2/3 (each quorum has 2 of 3 elements,
	// uniform strategy is optimal by symmetry).
	s := mustSystem(t, 3, []Set{NewSet(0, 1), NewSet(0, 2), NewSet(1, 2)})
	load, w, err := OptimalLoad(s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(load-2.0/3) > 1e-7 {
		t.Errorf("optimal load = %v, want 2/3", load)
	}
	if err := w.Validate(); err != nil {
		t.Errorf("returned strategy invalid: %v", err)
	}
	induced, err := InducedLoad(s, w)
	if err != nil {
		t.Fatal(err)
	}
	if induced > load+1e-7 {
		t.Errorf("strategy induces %v > optimum %v", induced, load)
	}
}

func TestOptimalLoadSingleton(t *testing.T) {
	// A single quorum containing one element forces load 1 on it.
	s := mustSystem(t, 3, []Set{NewSet(1)})
	load, _, err := OptimalLoad(s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(load-1) > 1e-9 {
		t.Errorf("load = %v, want 1", load)
	}
}

func TestVerifyLowerBoundCertificate(t *testing.T) {
	s := mustSystem(t, 3, []Set{NewSet(0, 1), NewSet(0, 2), NewSet(1, 2)})
	// Uniform y = 1/3 each: y(S) = 2/3 for every quorum → proves L ≥ 2/3.
	y := []float64{1.0 / 3, 1.0 / 3, 1.0 / 3}
	if err := VerifyLowerBoundCertificate(s, y, 2.0/3); err != nil {
		t.Errorf("valid certificate rejected: %v", err)
	}
	if err := VerifyLowerBoundCertificate(s, y, 0.7); err == nil {
		t.Error("overclaiming certificate accepted")
	}
	if err := VerifyLowerBoundCertificate(s, []float64{1, 1, -1}, 0.5); err == nil {
		t.Error("out-of-range certificate accepted")
	}
	if err := VerifyLowerBoundCertificate(s, []float64{0.5, 0.4}, 0.5); err == nil {
		t.Error("short certificate accepted")
	}
	if err := VerifyLowerBoundCertificate(s, []float64{0.5, 0.4, 0.4}, 0.5); err == nil {
		t.Error("non-normalized certificate accepted")
	}
}

func TestExactAvailabilityROWAWrite(t *testing.T) {
	// Single quorum of all n elements: availability p^n.
	n, p := 5, 0.8
	s := mustSystem(t, n, []Set{NewSet(0, 1, 2, 3, 4)})
	got, err := ExactAvailability(s, p)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Pow(p, float64(n))
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("availability = %v, want %v", got, want)
	}
}

func TestExactAvailabilityROWARead(t *testing.T) {
	// Singletons: availability 1-(1-p)^n.
	n, p := 6, 0.6
	qs := make([]Set, n)
	for i := range qs {
		qs[i] = NewSet(i)
	}
	s := mustSystem(t, n, qs)
	got, err := ExactAvailability(s, p)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - math.Pow(1-p, float64(n))
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("availability = %v, want %v", got, want)
	}
}

func TestExactAvailabilityTooLarge(t *testing.T) {
	qs := make([]Set, 1)
	elems := make([]int, 25)
	for i := range elems {
		elems[i] = i
	}
	qs[0] = NewSet(elems...)
	s := mustSystem(t, 25, qs)
	if _, err := ExactAvailability(s, 0.9); err != ErrTooLarge {
		t.Errorf("err = %v, want ErrTooLarge", err)
	}
}

func TestMonteCarloMatchesExact(t *testing.T) {
	s := mustSystem(t, 6, []Set{
		NewSet(0, 1), NewSet(2, 3), NewSet(4, 5),
	})
	p := 0.7
	exact, err := ExactAvailability(s, p)
	if err != nil {
		t.Fatal(err)
	}
	mc := MonteCarloAvailability(s, p, 200000, 42)
	if math.Abs(mc-exact) > 0.01 {
		t.Errorf("Monte Carlo %v vs exact %v", mc, exact)
	}
	if got := MonteCarloAvailability(s, p, 0, 1); got != 0 {
		t.Errorf("zero trials should return 0, got %v", got)
	}
}

func TestMinimize(t *testing.T) {
	s := mustSystem(t, 4, []Set{
		NewSet(0, 1),
		NewSet(0, 1, 2), // dominated by {0,1}
		NewSet(1, 2),
		NewSet(0, 2),
		NewSet(0, 1), // duplicate
	})
	m, err := Minimize(s)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 3 {
		t.Fatalf("minimized to %d quorums, want 3: %v", m.Len(), m.Quorums())
	}
	if !m.IsCoterie() {
		t.Error("minimized majority-like system should be a coterie")
	}
	// Optimal load is preserved.
	before, _, err := OptimalLoad(s)
	if err != nil {
		t.Fatal(err)
	}
	after, _, err := OptimalLoad(m)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(before-after) > 1e-9 {
		t.Errorf("minimization changed optimal load %v → %v", before, after)
	}
}

func TestMinimizeAlreadyMinimal(t *testing.T) {
	s := mustSystem(t, 3, []Set{NewSet(0, 1), NewSet(0, 2), NewSet(1, 2)})
	m, err := Minimize(s)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 3 {
		t.Errorf("minimal system shrunk to %d", m.Len())
	}
}
