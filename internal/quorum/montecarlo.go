package quorum

import "math/rand"

// MonteCarloAvailability estimates the probability that at least one quorum
// has all members alive, sampling `trials` independent world states in which
// each element is alive with probability p. The estimate is deterministic
// for a fixed seed.
func MonteCarloAvailability(s *System, p float64, trials int, seed int64) float64 {
	if trials <= 0 {
		return 0
	}
	r := rand.New(rand.NewSource(seed))
	alive := make([]bool, s.n)
	hits := 0
	for t := 0; t < trials; t++ {
		for i := range alive {
			alive[i] = r.Float64() < p
		}
		for _, q := range s.quorums {
			ok := true
			for _, e := range q {
				if !alive[e] {
					ok = false
					break
				}
			}
			if ok {
				hits++
				break
			}
		}
	}
	return float64(hits) / float64(trials)
}
