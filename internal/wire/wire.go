// Package wire defines the protocol's on-the-wire vocabulary: the message
// types clients and replicas exchange, the versioned Codec that serializes
// them, and the self-contained record format the durability layers (WAL,
// snapshots, checkpoints) share. It is a leaf package — transport, rpc and
// replica all build on it, so the message set and its encoding live in
// exactly one place.
//
// The message set is closed: the binary codec enumerates every type with an
// explicit tag byte, so an unknown payload is an encode-time error rather
// than a silent interoperability break. New messages are added here, with a
// new tag, a golden vector and a fuzz seed.
package wire

import "fmt"

// Timestamp orders writes: higher version wins, and among equal versions
// the LOWER site identifier wins (§3.2.1 of the paper: reads retrieve the
// value "whose timestamp has the highest version number and the lowest site
// identifier"). Site may be negative — clients stamp writes with their
// (negative) IDs.
type Timestamp struct {
	Version uint64
	Site    int
}

// After reports whether t is strictly more recent than o.
func (t Timestamp) After(o Timestamp) bool {
	if t.Version != o.Version {
		return t.Version > o.Version
	}
	return t.Site < o.Site
}

// String renders "v<version>@s<site>".
func (t Timestamp) String() string {
	return fmt.Sprintf("v%d@s%d", t.Version, t.Site)
}

// Request is a payload that carries a caller-allocated request ID. The rpc
// layer stamps the ID immediately before sending, so one request value can
// be fanned out to many sites, each call getting its own ID.
type Request interface {
	// WithReqID returns a copy of the request carrying the given ID.
	WithReqID(id uint64) any
}

// DeadlineCarrier is a request that propagates the caller's remaining time
// budget. The rpc layer stamps the budget immediately before sending (like
// WithReqID), so the value a replica sees is measured from the moment the
// message left the client, not from when the operation began. Zero means
// "no deadline" — the replica serves the request unconditionally.
type DeadlineCarrier interface {
	// WithDeadline returns a copy of the request carrying the remaining
	// budget in milliseconds.
	WithDeadline(millis uint64) any
}

// Request/response payloads exchanged between clients and replicas. Every
// request carries a client-chosen ReqID echoed in the response so the
// client can match replies to outstanding calls.

// VersionReq asks for the timestamp currently stored under Key.
type VersionReq struct {
	ReqID uint64
	Key   string
	// ForWrite marks the request as the version-discovery step of a write
	// (or transaction commit) rather than part of a read operation, so
	// replicas can attribute the serve to write-side load. The paper's
	// read load counts only read operations' accesses; without this split
	// a mixed workload inflates empirical read load with every write's
	// discovery quorum.
	ForWrite bool
	// DeadlineMillis is the caller's remaining budget in milliseconds at
	// send time; zero means no deadline. Replicas fast-fail work whose
	// budget is already spent instead of serving an answer nobody is
	// waiting for. Every request type carries this field (it rides at the
	// end of the frame, so version-1 peers simply never see it).
	DeadlineMillis uint64
}

// WithReqID implements Request.
func (m VersionReq) WithReqID(id uint64) any { m.ReqID = id; return m }

// WithDeadline implements DeadlineCarrier.
func (m VersionReq) WithDeadline(millis uint64) any { m.DeadlineMillis = millis; return m }

// VersionResp answers a VersionReq. Found is false if the key has never
// been written at this replica. Refused is true when the replica is
// catching up after a crash and not yet safe to serve version discovery;
// the client should treat the site as unavailable for this probe (but not
// dead — refusals come back instantly, unlike timeouts).
type VersionResp struct {
	ReqID   uint64
	Key     string
	TS      Timestamp
	Found   bool
	Refused bool
}

// ReadReq asks for the value stored under Key.
type ReadReq struct {
	ReqID uint64
	Key   string
	// DeadlineMillis is the remaining budget at send time; zero = none.
	DeadlineMillis uint64
}

// WithReqID implements Request.
func (m ReadReq) WithReqID(id uint64) any { m.ReqID = id; return m }

// WithDeadline implements DeadlineCarrier.
func (m ReadReq) WithDeadline(millis uint64) any { m.DeadlineMillis = millis; return m }

// ReadResp answers a ReadReq. Refused mirrors VersionResp.Refused: the
// replica is catching up and declines to serve possibly stale state.
type ReadResp struct {
	ReqID   uint64
	Key     string
	Value   []byte
	TS      Timestamp
	Found   bool
	Refused bool
}

// PrepareReq is phase one of a write: lock Key for transaction TxID,
// intending to install a value with timestamp TS.
type PrepareReq struct {
	ReqID uint64
	TxID  uint64
	Key   string
	TS    Timestamp
	// DeadlineMillis is the remaining budget at send time; zero = none.
	DeadlineMillis uint64
}

// WithReqID implements Request.
func (m PrepareReq) WithReqID(id uint64) any { m.ReqID = id; return m }

// WithDeadline implements DeadlineCarrier.
func (m PrepareReq) WithDeadline(millis uint64) any { m.DeadlineMillis = millis; return m }

// PrepareResp acknowledges (or refuses) a prepare.
type PrepareResp struct {
	ReqID uint64
	TxID  uint64
	OK    bool
	// Reason explains a refusal ("locked", "stale").
	Reason string
}

// CommitReq is phase two of a write: install Value under Key with TS and
// release the transaction's lock.
type CommitReq struct {
	ReqID uint64
	TxID  uint64
	Key   string
	Value []byte
	TS    Timestamp
	// DeadlineMillis is the remaining budget at send time; zero = none.
	// Commits are never shed or expired server-side — the field rides
	// along only so every request shares one stamping path.
	DeadlineMillis uint64
}

// WithReqID implements Request.
func (m CommitReq) WithReqID(id uint64) any { m.ReqID = id; return m }

// WithDeadline implements DeadlineCarrier.
func (m CommitReq) WithDeadline(millis uint64) any { m.DeadlineMillis = millis; return m }

// CommitResp acknowledges a commit.
type CommitResp struct {
	ReqID uint64
	TxID  uint64
	OK    bool
}

// AbortReq releases the transaction's lock without writing.
type AbortReq struct {
	ReqID uint64
	TxID  uint64
	Key   string
	// DeadlineMillis is the remaining budget at send time; zero = none.
	// Aborts, like commits, are never shed or expired server-side.
	DeadlineMillis uint64
}

// WithReqID implements Request.
func (m AbortReq) WithReqID(id uint64) any { m.ReqID = id; return m }

// WithDeadline implements DeadlineCarrier.
func (m AbortReq) WithDeadline(millis uint64) any { m.DeadlineMillis = millis; return m }

// AbortResp acknowledges an abort.
type AbortResp struct {
	ReqID uint64
	TxID  uint64
}

// Anti-entropy catch-up messages. A recovering replica drives these against
// one live site per other physical level: SyncDigestReq pages through the
// source's key/timestamp digest in key order, and SyncFetchReq pulls the
// values for exactly the keys whose source timestamp beats the local one.
// Unlike the client messages above, both sides of this exchange are
// replicas; responses are routed by ReqID inside the recovering replica's
// event loop.

// SyncDigestReq asks a source replica for one page of its digest: up to
// Limit key/timestamp pairs in ascending key order, strictly after
// StartAfter (empty string starts from the beginning).
type SyncDigestReq struct {
	ReqID      uint64
	StartAfter string
	Limit      int
	// DeadlineMillis is the remaining budget at send time; zero = none.
	DeadlineMillis uint64
}

// WithReqID implements Request.
func (m SyncDigestReq) WithReqID(id uint64) any { m.ReqID = id; return m }

// WithDeadline implements DeadlineCarrier.
func (m SyncDigestReq) WithDeadline(millis uint64) any { m.DeadlineMillis = millis; return m }

// DigestEntry is one key/timestamp pair of a digest page.
type DigestEntry struct {
	Key string
	TS  Timestamp
}

// SyncDigestResp answers a SyncDigestReq. More reports whether keys beyond
// the last entry remain.
type SyncDigestResp struct {
	ReqID   uint64
	Entries []DigestEntry
	More    bool
}

// SyncFetchReq asks a source replica for the current values of Keys.
type SyncFetchReq struct {
	ReqID uint64
	Keys  []string
	// DeadlineMillis is the remaining budget at send time; zero = none.
	DeadlineMillis uint64
}

// WithReqID implements Request.
func (m SyncFetchReq) WithReqID(id uint64) any { m.ReqID = id; return m }

// WithDeadline implements DeadlineCarrier.
func (m SyncFetchReq) WithDeadline(millis uint64) any { m.DeadlineMillis = millis; return m }

// SyncItem is one fetched key: the source's current value and timestamp
// (which may be newer than the digest that requested it — newer is fine,
// the store applies timestamp-ordered writes idempotently).
type SyncItem struct {
	Key   string
	Value []byte
	TS    Timestamp
	Found bool
}

// SyncFetchResp answers a SyncFetchReq.
type SyncFetchResp struct {
	ReqID uint64
	Items []SyncItem
}

// PingReq probes liveness.
type PingReq struct {
	ReqID uint64
	// DeadlineMillis is the remaining budget at send time; zero = none.
	DeadlineMillis uint64
}

// WithReqID implements Request.
func (m PingReq) WithReqID(id uint64) any { m.ReqID = id; return m }

// WithDeadline implements DeadlineCarrier.
func (m PingReq) WithDeadline(millis uint64) any { m.DeadlineMillis = millis; return m }

// PingResp answers a ping.
type PingResp struct {
	ReqID uint64
	Site  int
}

// OverloadedResp is a replica's typed load-shed reply: the admission gate
// refused the request outright (queue full, saturated, or draining) or the
// request's budget expired while it waited. It can answer any request type
// the gate covers — reads, version probes and prepares; phase-two commits
// and aborts are never shed. Unlike a timeout, an overload reply comes back
// instantly and says the site is alive, just busy: clients skip elsewhere
// without burning their deadline and honor RetryAfterMillis as a backoff
// floor before contacting this site again.
type OverloadedResp struct {
	ReqID uint64
	// RetryAfterMillis is the replica's backoff hint: how long the client
	// should wait before sending this site more sheddable work.
	RetryAfterMillis uint64
}
