package wire

import (
	"bytes"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden wire vectors")

// vectors enumerates one representative value per message type, plus edge
// cases the encoding must pin down: negative sites (clients), empty and nil
// byte fields, multi-byte varints and non-ASCII keys. Adding a message type
// means adding a vector here (and a fuzz seed).
func vectors() []struct {
	name string
	msg  any
} {
	return []struct {
		name string
		msg  any
	}{
		{"version_req", VersionReq{ReqID: 1, Key: "k", ForWrite: true}},
		{"version_resp", VersionResp{ReqID: 2, Key: "k", TS: Timestamp{Version: 7, Site: -3}, Found: true}},
		{"read_req", ReadReq{ReqID: 300, Key: "config/λ"}},
		{"read_resp", ReadResp{ReqID: 4, Key: "k", Value: []byte{0, 1, 0xFF}, TS: Timestamp{Version: 1 << 40, Site: 12}, Found: true}},
		{"read_resp_refused", ReadResp{ReqID: 5, Key: "k", Refused: true}},
		{"prepare_req", PrepareReq{ReqID: 6, TxID: 99, Key: "k", TS: Timestamp{Version: 8, Site: -1}}},
		{"prepare_resp", PrepareResp{ReqID: 7, TxID: 99, OK: false, Reason: "locked"}},
		{"commit_req", CommitReq{ReqID: 8, TxID: 99, Key: "k", Value: []byte("v"), TS: Timestamp{Version: 9, Site: -2}}},
		{"commit_req_empty_value", CommitReq{ReqID: 9, TxID: 100, Key: "k", TS: Timestamp{Version: 1, Site: 1}}},
		{"commit_resp", CommitResp{ReqID: 10, TxID: 99, OK: true}},
		{"abort_req", AbortReq{ReqID: 11, TxID: 99, Key: "k"}},
		{"abort_resp", AbortResp{ReqID: 12, TxID: 99}},
		{"sync_digest_req", SyncDigestReq{ReqID: 13, StartAfter: "m", Limit: 128}},
		{"sync_digest_resp", SyncDigestResp{ReqID: 14, Entries: []DigestEntry{
			{Key: "a", TS: Timestamp{Version: 1, Site: 2}},
			{Key: "b", TS: Timestamp{Version: 2, Site: -9}},
		}, More: true}},
		{"sync_digest_resp_empty", SyncDigestResp{ReqID: 15}},
		{"sync_fetch_req", SyncFetchReq{ReqID: 16, Keys: []string{"a", "", "c"}}},
		{"sync_fetch_resp", SyncFetchResp{ReqID: 17, Items: []SyncItem{
			{Key: "a", Value: []byte("x"), TS: Timestamp{Version: 3, Site: 4}, Found: true},
			{Key: "gone"},
		}}},
		{"ping_req", PingReq{ReqID: 18}},
		{"ping_resp", PingResp{ReqID: 19, Site: -27}},
		{"overloaded_resp", OverloadedResp{ReqID: 20, RetryAfterMillis: 40}},
		{"read_req_deadline", ReadReq{ReqID: 21, Key: "k", DeadlineMillis: 1500}},
		{"prepare_req_deadline", PrepareReq{ReqID: 22, TxID: 101, Key: "k", TS: Timestamp{Version: 3, Site: -4}, DeadlineMillis: 250}},
	}
}

// TestRoundTripBothCodecs: every message survives encode→decode under both
// codecs, and the binary encoding is a byte-level fixpoint.
func TestRoundTripBothCodecs(t *testing.T) {
	for _, codec := range []Codec{Binary(), Gob()} {
		for _, v := range vectors() {
			enc, err := codec.Encode(nil, v.msg)
			if err != nil {
				t.Fatalf("%s/%s: encode: %v", codec.Name(), v.name, err)
			}
			dec, err := codec.Decode(enc)
			if err != nil {
				t.Fatalf("%s/%s: decode: %v", codec.Name(), v.name, err)
			}
			if !reflect.DeepEqual(dec, v.msg) {
				t.Errorf("%s/%s: round trip\n got %#v\nwant %#v", codec.Name(), v.name, dec, v.msg)
			}
			enc2, err := codec.Encode(nil, dec)
			if err != nil {
				t.Fatalf("%s/%s: re-encode: %v", codec.Name(), v.name, err)
			}
			if codec.Name() == "binary" && !bytes.Equal(enc, enc2) {
				t.Errorf("%s/%s: re-encoding differs:\n %x\n %x", codec.Name(), v.name, enc, enc2)
			}
		}
	}
}

// TestGoldenVectors pins the binary wire format byte for byte: a change
// that alters any encoding must bump the codec version and regenerate the
// file with -update, not slide by silently.
func TestGoldenVectors(t *testing.T) {
	path := filepath.Join("testdata", "golden_binary_v2.txt")
	c := Binary()
	if *update {
		var sb strings.Builder
		for _, v := range vectors() {
			enc, err := c.Encode(nil, v.msg)
			if err != nil {
				t.Fatal(err)
			}
			fmt.Fprintf(&sb, "%s %s\n", v.name, hex.EncodeToString(enc))
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (regenerate with -update): %v", err)
	}
	golden := make(map[string]string)
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		name, hexEnc, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("malformed golden line %q", line)
		}
		golden[name] = hexEnc
	}
	if len(golden) != len(vectors()) {
		t.Errorf("golden file has %d vectors, test has %d (regenerate with -update)", len(golden), len(vectors()))
	}
	for _, v := range vectors() {
		enc, err := c.Encode(nil, v.msg)
		if err != nil {
			t.Fatal(err)
		}
		want, ok := golden[v.name]
		if !ok {
			t.Errorf("%s: no golden vector (regenerate with -update)", v.name)
			continue
		}
		if got := hex.EncodeToString(enc); got != want {
			t.Errorf("%s: wire bytes changed\n got %s\nwant %s", v.name, got, want)
		}
		// And the checked-in bytes still decode to the same message.
		raw, err := hex.DecodeString(want)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := c.Decode(raw)
		if err != nil {
			t.Errorf("%s: golden bytes do not decode: %v", v.name, err)
			continue
		}
		if !reflect.DeepEqual(dec, v.msg) {
			t.Errorf("%s: golden bytes decode to %#v, want %#v", v.name, dec, v.msg)
		}
	}
}

// TestLegacyV1FramesDecode pins backward compatibility: every byte vector
// of the version-1 corpus (frozen when the deadline field did not exist)
// must still decode, requests coming back with a zero DeadlineMillis, and
// must re-encode as a stable version-2 frame. The v1 file is never
// regenerated — it IS the compatibility contract.
func TestLegacyV1FramesDecode(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "golden_binary_v1.txt"))
	if err != nil {
		t.Fatalf("legacy golden file missing: %v", err)
	}
	c := Binary()
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		name, hexEnc, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("malformed legacy golden line %q", line)
		}
		raw, err := hex.DecodeString(hexEnc)
		if err != nil {
			t.Fatal(err)
		}
		msg, err := c.Decode(raw)
		if err != nil {
			t.Errorf("%s: v1 frame no longer decodes: %v", name, err)
			continue
		}
		if dc, ok := msg.(DeadlineCarrier); ok {
			if stamped := dc.WithDeadline(0); !reflect.DeepEqual(stamped, msg) {
				t.Errorf("%s: v1 frame decoded with a non-zero deadline: %#v", name, msg)
			}
		}
		// The legacy frame upgrades to a stable v2 encoding.
		enc, err := c.Encode(nil, msg)
		if err != nil {
			t.Errorf("%s: upgraded message does not re-encode: %v", name, err)
			continue
		}
		dec, err := c.Decode(enc)
		if err != nil {
			t.Errorf("%s: upgraded frame does not decode: %v", name, err)
			continue
		}
		if !reflect.DeepEqual(dec, msg) {
			t.Errorf("%s: upgrade round trip diverged:\n got %#v\nwant %#v", name, dec, msg)
		}
	}
}

func TestEncodeAppends(t *testing.T) {
	c := Binary()
	prefix := []byte{0xAA, 0xBB}
	enc, err := c.Encode(prefix, PingReq{ReqID: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc[:2], prefix) {
		t.Errorf("Encode did not append: %x", enc)
	}
	if _, err := c.Decode(enc[2:]); err != nil {
		t.Errorf("appended encoding does not decode: %v", err)
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	c := Binary()
	enc, err := c.Encode(nil, ReadResp{ReqID: 1, Key: "k", Value: []byte("v"), Found: true})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":            {},
		"version_only":     {binaryVersion},
		"bad_version":      append([]byte{binaryVersion + 1}, enc[1:]...),
		"version_zero":     append([]byte{0}, enc[1:]...),
		"unknown_tag":      {binaryVersion, 0},
		"truncated":        enc[:len(enc)-2],
		"trailing_bytes":   append(append([]byte(nil), enc...), 0),
		"bad_bool":         func() []byte { b := append([]byte(nil), enc...); b[len(b)-1] = 7; return b }(),
		"absurd_slice_len": {binaryVersion, tagSyncFetchReq, 1, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F},
	}
	for name, data := range cases {
		if _, err := c.Decode(data); err == nil {
			t.Errorf("%s: decode accepted malformed input %x", name, data)
		}
	}
}

func TestEncodeRejectsUnknownType(t *testing.T) {
	if _, err := Binary().Encode(nil, struct{ X int }{1}); err == nil {
		t.Error("binary codec encoded a type outside the message set")
	}
}

func TestDecodedValueDoesNotAliasInput(t *testing.T) {
	c := Binary()
	enc, err := c.Encode(nil, CommitReq{ReqID: 1, Key: "k", Value: []byte("abc"), TS: Timestamp{Version: 1, Site: 1}})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := c.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range enc {
		enc[i] = 0xFF
	}
	if got := string(dec.(CommitReq).Value); got != "abc" {
		t.Errorf("decoded value aliases the input buffer: %q", got)
	}
}

func TestByName(t *testing.T) {
	for name, want := range map[string]string{"": "binary", "binary": "binary", "gob": "gob"} {
		c, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if c.Name() != want {
			t.Errorf("ByName(%q).Name() = %q, want %q", name, c.Name(), want)
		}
	}
	if _, err := ByName("json"); err == nil {
		t.Error("ByName accepted an unknown codec")
	}
}

func TestTimestampOrdering(t *testing.T) {
	a := Timestamp{Version: 2, Site: 5}
	if !a.After(Timestamp{Version: 1, Site: 1}) {
		t.Error("higher version must win")
	}
	// Equal versions: the LOWER site wins (§3.2.1).
	if !(Timestamp{Version: 2, Site: 1}).After(a) {
		t.Error("equal versions: lower site must win")
	}
	if a.After(a) {
		t.Error("a timestamp is not after itself")
	}
}
