package wire

import "testing"

// The encode/decode benchmarks compare the binary codec against gob on the
// two hot messages of the request path: the read probe and the commit.
// go test -bench=Codec -benchmem ./internal/wire/

func benchMessages() (ReadResp, CommitReq) {
	value := make([]byte, 128)
	for i := range value {
		value[i] = byte(i)
	}
	read := ReadResp{ReqID: 123456, Key: "user/profile/42", Value: value, TS: Timestamp{Version: 987, Site: -3}, Found: true}
	commit := CommitReq{ReqID: 123457, TxID: 42, Key: "user/profile/42", Value: value, TS: Timestamp{Version: 988, Site: -3}}
	return read, commit
}

func benchmarkEncode(b *testing.B, c Codec) {
	read, commit := benchMessages()
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = c.Encode(buf[:0], read)
		if err != nil {
			b.Fatal(err)
		}
		buf, err = c.Encode(buf[:0], commit)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func benchmarkDecode(b *testing.B, c Codec) {
	read, commit := benchMessages()
	encRead, err := c.Encode(nil, read)
	if err != nil {
		b.Fatal(err)
	}
	encCommit, err := c.Encode(nil, commit)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decode(encRead); err != nil {
			b.Fatal(err)
		}
		if _, err := c.Decode(encCommit); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCodecEncodeBinary(b *testing.B) { benchmarkEncode(b, Binary()) }
func BenchmarkCodecEncodeGob(b *testing.B)    { benchmarkEncode(b, Gob()) }
func BenchmarkCodecDecodeBinary(b *testing.B) { benchmarkDecode(b, Binary()) }
func BenchmarkCodecDecodeGob(b *testing.B)    { benchmarkDecode(b, Gob()) }
