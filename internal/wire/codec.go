package wire

import "fmt"

// Codec serializes protocol messages for a byte-stream transport. A codec
// is identified by its name and a wire-format version byte; endpoints
// exchange both during connection setup and refuse to talk across a
// mismatch, so a format change is a loud handshake failure instead of a
// silent mis-decode.
//
// Implementations must be stateless and safe for concurrent use: one codec
// value serves every connection of a transport.
type Codec interface {
	// Name identifies the codec family ("binary", "gob").
	Name() string
	// Version is the codec's wire-format version byte. Bump it on any
	// incompatible layout change.
	Version() byte
	// Encode appends the message's encoding to dst and returns the
	// extended slice, like append. Unknown payload types are an error —
	// the message set is closed.
	Encode(dst []byte, payload any) ([]byte, error)
	// Decode parses one encoded message. The returned payload never
	// aliases data, so callers may recycle the buffer immediately.
	Decode(data []byte) (any, error)
}

// Message type tags used by the binary codec (and by any future compact
// codec). Tag 0 is reserved so a zeroed buffer never decodes.
const (
	tagVersionReq byte = iota + 1
	tagVersionResp
	tagReadReq
	tagReadResp
	tagPrepareReq
	tagPrepareResp
	tagCommitReq
	tagCommitResp
	tagAbortReq
	tagAbortResp
	tagPingReq
	tagPingResp
	tagSyncDigestReq
	tagSyncDigestResp
	tagSyncFetchReq
	tagSyncFetchResp
	tagOverloadedResp
)

// ByName resolves a codec by its registered name — the form the -codec CLI
// flags take.
func ByName(name string) (Codec, error) {
	switch name {
	case "", "binary":
		return Binary(), nil
	case "gob":
		return Gob(), nil
	default:
		return nil, fmt.Errorf("wire: unknown codec %q (have binary, gob)", name)
	}
}
