package wire

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"
)

func TestRecordRoundTrip(t *testing.T) {
	recs := []Record{
		{Key: "k", Value: []byte("v"), TS: Timestamp{Version: 3, Site: -2}},
		{Key: "", Value: nil, TS: Timestamp{}},
		{Key: "big", Value: bytes.Repeat([]byte{7}, 1000), TS: Timestamp{Version: 1 << 50, Site: 99}},
	}
	for _, rec := range recs {
		enc := AppendRecord(nil, rec)
		got, err := DecodeRecord(enc)
		if err != nil {
			t.Fatalf("%q: %v", rec.Key, err)
		}
		if !reflect.DeepEqual(got, rec) {
			t.Errorf("%q: got %#v, want %#v", rec.Key, got, rec)
		}
		if !bytes.Equal(AppendRecord(nil, got), enc) {
			t.Errorf("%q: record encoding is not a fixpoint", rec.Key)
		}
	}
}

func TestDecodeRecordRejects(t *testing.T) {
	enc := AppendRecord(nil, Record{Key: "k", Value: []byte("v")})
	if _, err := DecodeRecord([]byte{0x01, 0x02}); err != ErrNotRecord {
		t.Errorf("no magic: err = %v, want ErrNotRecord", err)
	}
	if _, err := DecodeRecord(nil); err != ErrNotRecord {
		t.Errorf("empty: err = %v, want ErrNotRecord", err)
	}
	if _, err := DecodeRecord([]byte{RecordMagic, recordVersion + 1}); err == nil {
		t.Error("future version accepted")
	}
	if _, err := DecodeRecord(enc[:len(enc)-1]); err == nil {
		t.Error("truncated record accepted")
	}
	if _, err := DecodeRecord(append(append([]byte(nil), enc...), 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

// TestMagicBytesCannotStartGob pins the load-bearing fact behind the
// one-byte format sniff: a gob stream's first byte is a single-byte segment
// length (≤ 0x7F) or a multi-byte length marker (≥ 0xF8), so the magics in
// between are unambiguous.
func TestMagicBytesCannotStartGob(t *testing.T) {
	for _, magic := range []byte{RecordMagic, SnapshotMagic} {
		if magic <= 0x7F || magic >= 0xF8 {
			t.Errorf("magic 0x%02X is inside gob's first-byte range", magic)
		}
	}
}

func TestSnapshotHeader(t *testing.T) {
	if err := CheckSnapshotHeader(SnapshotHeader()); err != nil {
		t.Fatal(err)
	}
	if err := CheckSnapshotHeader([]byte{SnapshotMagic}); err == nil {
		t.Error("short header accepted")
	}
	if err := CheckSnapshotHeader([]byte{0x00, snapshotVersion}); err != ErrNotRecord {
		t.Errorf("wrong magic: err = %v, want ErrNotRecord", err)
	}
	if err := CheckSnapshotHeader([]byte{SnapshotMagic, snapshotVersion + 1}); err == nil {
		t.Error("future snapshot version accepted")
	}
}

func TestAppendFramedRecord(t *testing.T) {
	rec := Record{Key: "k", Value: []byte("vv"), TS: Timestamp{Version: 1, Site: 2}}
	framed := AppendFramedRecord(nil, rec)
	n := binary.BigEndian.Uint32(framed[:4])
	if int(n) != len(framed)-4 {
		t.Fatalf("frame length %d, body %d", n, len(framed)-4)
	}
	got, err := DecodeRecord(framed[4:])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rec) {
		t.Errorf("got %#v, want %#v", got, rec)
	}
}
