package wire

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// Gob returns the legacy gob codec, retained for one release behind the
// WithCodec option so deployments can roll the binary format out
// incrementally. Every message is a self-contained gob stream (a fresh
// encoder per message), the same property the WAL relies on: no encoder
// state spans messages, so a stream never depends on type descriptors
// emitted by an earlier one.
func Gob() Codec { return gobCodec{} }

type gobCodec struct{}

// gobEnvelope carries the payload as an interface so gob records the
// concrete message type; every protocol type is registered at init.
type gobEnvelope struct {
	Payload any
}

func init() {
	for _, v := range []any{
		VersionReq{}, VersionResp{},
		ReadReq{}, ReadResp{},
		PrepareReq{}, PrepareResp{},
		CommitReq{}, CommitResp{},
		AbortReq{}, AbortResp{},
		PingReq{}, PingResp{},
		SyncDigestReq{}, SyncDigestResp{},
		SyncFetchReq{}, SyncFetchResp{},
		OverloadedResp{},
	} {
		gob.Register(v)
	}
}

func (gobCodec) Name() string  { return "gob" }
func (gobCodec) Version() byte { return 1 }

// Encode appends a self-contained gob stream for the message to dst.
func (gobCodec) Encode(dst []byte, payload any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(gobEnvelope{Payload: payload}); err != nil {
		return nil, fmt.Errorf("wire: gob encode %T: %w", payload, err)
	}
	return append(dst, buf.Bytes()...), nil
}

// Decode parses one gob-encoded message.
func (gobCodec) Decode(data []byte) (any, error) {
	var env gobEnvelope
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&env); err != nil {
		return nil, fmt.Errorf("wire: gob decode: %w", err)
	}
	return env.Payload, nil
}
