package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// binaryVersion is the current wire-format version of the binary codec.
// Version 2 appended a deadline (uvarint millis-remaining) to every request
// type and added OverloadedResp; Decode still accepts version-1 frames,
// which simply carry no deadline.
const binaryVersion byte = 2

// binaryVersionLegacy is the oldest frame version Decode still accepts.
const binaryVersionLegacy byte = 1

// Binary returns the hand-rolled binary codec, the default wire format.
//
// Layout: every message is [version byte][tag byte][fields]. Fields are
// encoded in struct order with four primitives and no padding:
//
//	uint    — unsigned varint (encoding/binary uvarint)
//	int     — signed varint (zig-zag); site IDs and addresses can be
//	          negative (clients), so they must never go through uvarint
//	bool    — one byte, 0 or 1
//	string/ — unsigned varint length followed by the raw bytes; a zero
//	bytes     length decodes as empty/nil (presence is carried by explicit
//	          Found flags, not by the encoding)
//
// Timestamps are a uvarint version followed by a varint site. Slices are a
// uvarint element count followed by the elements. Decode rejects trailing
// bytes, so encode→decode→encode is a byte-level fixpoint — the property
// FuzzWireRoundTrip pins down.
func Binary() Codec { return binaryCodec{} }

type binaryCodec struct{}

func (binaryCodec) Name() string  { return "binary" }
func (binaryCodec) Version() byte { return binaryVersion }

// Encode appends the message's binary encoding to dst.
func (binaryCodec) Encode(dst []byte, payload any) ([]byte, error) {
	dst = append(dst, binaryVersion)
	switch m := payload.(type) {
	case VersionReq:
		dst = append(dst, tagVersionReq)
		dst = binary.AppendUvarint(dst, m.ReqID)
		dst = appendString(dst, m.Key)
		dst = appendBool(dst, m.ForWrite)
		dst = binary.AppendUvarint(dst, m.DeadlineMillis)
	case VersionResp:
		dst = append(dst, tagVersionResp)
		dst = binary.AppendUvarint(dst, m.ReqID)
		dst = appendString(dst, m.Key)
		dst = appendTS(dst, m.TS)
		dst = appendBool(dst, m.Found)
		dst = appendBool(dst, m.Refused)
	case ReadReq:
		dst = append(dst, tagReadReq)
		dst = binary.AppendUvarint(dst, m.ReqID)
		dst = appendString(dst, m.Key)
		dst = binary.AppendUvarint(dst, m.DeadlineMillis)
	case ReadResp:
		dst = append(dst, tagReadResp)
		dst = binary.AppendUvarint(dst, m.ReqID)
		dst = appendString(dst, m.Key)
		dst = appendBytes(dst, m.Value)
		dst = appendTS(dst, m.TS)
		dst = appendBool(dst, m.Found)
		dst = appendBool(dst, m.Refused)
	case PrepareReq:
		dst = append(dst, tagPrepareReq)
		dst = binary.AppendUvarint(dst, m.ReqID)
		dst = binary.AppendUvarint(dst, m.TxID)
		dst = appendString(dst, m.Key)
		dst = appendTS(dst, m.TS)
		dst = binary.AppendUvarint(dst, m.DeadlineMillis)
	case PrepareResp:
		dst = append(dst, tagPrepareResp)
		dst = binary.AppendUvarint(dst, m.ReqID)
		dst = binary.AppendUvarint(dst, m.TxID)
		dst = appendBool(dst, m.OK)
		dst = appendString(dst, m.Reason)
	case CommitReq:
		dst = append(dst, tagCommitReq)
		dst = binary.AppendUvarint(dst, m.ReqID)
		dst = binary.AppendUvarint(dst, m.TxID)
		dst = appendString(dst, m.Key)
		dst = appendBytes(dst, m.Value)
		dst = appendTS(dst, m.TS)
		dst = binary.AppendUvarint(dst, m.DeadlineMillis)
	case CommitResp:
		dst = append(dst, tagCommitResp)
		dst = binary.AppendUvarint(dst, m.ReqID)
		dst = binary.AppendUvarint(dst, m.TxID)
		dst = appendBool(dst, m.OK)
	case AbortReq:
		dst = append(dst, tagAbortReq)
		dst = binary.AppendUvarint(dst, m.ReqID)
		dst = binary.AppendUvarint(dst, m.TxID)
		dst = appendString(dst, m.Key)
		dst = binary.AppendUvarint(dst, m.DeadlineMillis)
	case AbortResp:
		dst = append(dst, tagAbortResp)
		dst = binary.AppendUvarint(dst, m.ReqID)
		dst = binary.AppendUvarint(dst, m.TxID)
	case PingReq:
		dst = append(dst, tagPingReq)
		dst = binary.AppendUvarint(dst, m.ReqID)
		dst = binary.AppendUvarint(dst, m.DeadlineMillis)
	case PingResp:
		dst = append(dst, tagPingResp)
		dst = binary.AppendUvarint(dst, m.ReqID)
		dst = binary.AppendVarint(dst, int64(m.Site))
	case OverloadedResp:
		dst = append(dst, tagOverloadedResp)
		dst = binary.AppendUvarint(dst, m.ReqID)
		dst = binary.AppendUvarint(dst, m.RetryAfterMillis)
	case SyncDigestReq:
		dst = append(dst, tagSyncDigestReq)
		dst = binary.AppendUvarint(dst, m.ReqID)
		dst = appendString(dst, m.StartAfter)
		dst = binary.AppendVarint(dst, int64(m.Limit))
		dst = binary.AppendUvarint(dst, m.DeadlineMillis)
	case SyncDigestResp:
		dst = append(dst, tagSyncDigestResp)
		dst = binary.AppendUvarint(dst, m.ReqID)
		dst = binary.AppendUvarint(dst, uint64(len(m.Entries)))
		for _, e := range m.Entries {
			dst = appendString(dst, e.Key)
			dst = appendTS(dst, e.TS)
		}
		dst = appendBool(dst, m.More)
	case SyncFetchReq:
		dst = append(dst, tagSyncFetchReq)
		dst = binary.AppendUvarint(dst, m.ReqID)
		dst = binary.AppendUvarint(dst, uint64(len(m.Keys)))
		for _, k := range m.Keys {
			dst = appendString(dst, k)
		}
		dst = binary.AppendUvarint(dst, m.DeadlineMillis)
	case SyncFetchResp:
		dst = append(dst, tagSyncFetchResp)
		dst = binary.AppendUvarint(dst, m.ReqID)
		dst = binary.AppendUvarint(dst, uint64(len(m.Items)))
		for _, it := range m.Items {
			dst = appendString(dst, it.Key)
			dst = appendBytes(dst, it.Value)
			dst = appendTS(dst, it.TS)
			dst = appendBool(dst, it.Found)
		}
	default:
		return nil, fmt.Errorf("wire: cannot encode %T: not a protocol message", payload)
	}
	return dst, nil
}

// Decode parses one binary-encoded message. Returned payloads never alias
// data (byte-slice fields are copied out). Version-1 frames (pre-deadline)
// are still accepted: their requests decode with a zero DeadlineMillis.
func (binaryCodec) Decode(data []byte) (any, error) {
	if len(data) < 2 {
		return nil, errors.New("wire: short message")
	}
	ver := data[0]
	if ver < binaryVersionLegacy || ver > binaryVersion {
		return nil, fmt.Errorf("wire: binary version %d, want %d..%d", ver, binaryVersionLegacy, binaryVersion)
	}
	tag := data[1]
	r := reader{buf: data[2:]}
	// deadline reads the trailing millis-remaining field on request types;
	// version-1 frames predate it and decode as "no deadline".
	deadline := func() uint64 {
		if ver < 2 {
			return 0
		}
		return r.uvarint()
	}
	var out any
	switch tag {
	case tagVersionReq:
		out = VersionReq{ReqID: r.uvarint(), Key: r.str(), ForWrite: r.bool(), DeadlineMillis: deadline()}
	case tagVersionResp:
		out = VersionResp{ReqID: r.uvarint(), Key: r.str(), TS: r.ts(), Found: r.bool(), Refused: r.bool()}
	case tagReadReq:
		out = ReadReq{ReqID: r.uvarint(), Key: r.str(), DeadlineMillis: deadline()}
	case tagReadResp:
		out = ReadResp{ReqID: r.uvarint(), Key: r.str(), Value: r.bytes(), TS: r.ts(), Found: r.bool(), Refused: r.bool()}
	case tagPrepareReq:
		out = PrepareReq{ReqID: r.uvarint(), TxID: r.uvarint(), Key: r.str(), TS: r.ts(), DeadlineMillis: deadline()}
	case tagPrepareResp:
		out = PrepareResp{ReqID: r.uvarint(), TxID: r.uvarint(), OK: r.bool(), Reason: r.str()}
	case tagCommitReq:
		out = CommitReq{ReqID: r.uvarint(), TxID: r.uvarint(), Key: r.str(), Value: r.bytes(), TS: r.ts(), DeadlineMillis: deadline()}
	case tagCommitResp:
		out = CommitResp{ReqID: r.uvarint(), TxID: r.uvarint(), OK: r.bool()}
	case tagAbortReq:
		out = AbortReq{ReqID: r.uvarint(), TxID: r.uvarint(), Key: r.str(), DeadlineMillis: deadline()}
	case tagAbortResp:
		out = AbortResp{ReqID: r.uvarint(), TxID: r.uvarint()}
	case tagPingReq:
		out = PingReq{ReqID: r.uvarint(), DeadlineMillis: deadline()}
	case tagPingResp:
		out = PingResp{ReqID: r.uvarint(), Site: int(r.varint())}
	case tagOverloadedResp:
		out = OverloadedResp{ReqID: r.uvarint(), RetryAfterMillis: r.uvarint()}
	case tagSyncDigestReq:
		out = SyncDigestReq{ReqID: r.uvarint(), StartAfter: r.str(), Limit: int(r.varint()), DeadlineMillis: deadline()}
	case tagSyncDigestResp:
		m := SyncDigestResp{ReqID: r.uvarint()}
		if n := r.count(); n > 0 {
			m.Entries = make([]DigestEntry, n)
			for i := range m.Entries {
				m.Entries[i] = DigestEntry{Key: r.str(), TS: r.ts()}
			}
		}
		m.More = r.bool()
		out = m
	case tagSyncFetchReq:
		m := SyncFetchReq{ReqID: r.uvarint()}
		if n := r.count(); n > 0 {
			m.Keys = make([]string, n)
			for i := range m.Keys {
				m.Keys[i] = r.str()
			}
		}
		m.DeadlineMillis = deadline()
		out = m
	case tagSyncFetchResp:
		m := SyncFetchResp{ReqID: r.uvarint()}
		if n := r.count(); n > 0 {
			m.Items = make([]SyncItem, n)
			for i := range m.Items {
				m.Items[i] = SyncItem{Key: r.str(), Value: r.bytes(), TS: r.ts(), Found: r.bool()}
			}
		}
		out = m
	default:
		return nil, fmt.Errorf("wire: unknown message tag %d", tag)
	}
	if r.err != nil {
		return nil, fmt.Errorf("wire: decode tag %d: %w", tag, r.err)
	}
	if len(r.buf) != 0 {
		return nil, fmt.Errorf("wire: decode tag %d: %d trailing bytes", tag, len(r.buf))
	}
	return out, nil
}

// Append helpers.

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

func appendBool(dst []byte, b bool) []byte {
	if b {
		return append(dst, 1)
	}
	return append(dst, 0)
}

func appendTS(dst []byte, ts Timestamp) []byte {
	dst = binary.AppendUvarint(dst, ts.Version)
	return binary.AppendVarint(dst, int64(ts.Site))
}

// reader is a bounds-checked decode cursor. The first malformed field
// poisons it; callers check err once at the end.
type reader struct {
	buf []byte
	err error
}

var (
	errTruncated = errors.New("truncated field")
	errBadBool   = errors.New("bad bool byte")
)

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		r.err = errTruncated
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *reader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf)
	if n <= 0 {
		r.err = errTruncated
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

// count reads a slice length, bounded by the bytes that remain (each
// element costs at least one byte), so a corrupt length cannot demand an
// absurd allocation.
func (r *reader) count() int {
	n := r.uvarint()
	if r.err != nil {
		return 0
	}
	if n > uint64(len(r.buf)) {
		r.err = errTruncated
		return 0
	}
	return int(n)
}

func (r *reader) str() string {
	if r.err != nil {
		return ""
	}
	n := r.count()
	if r.err != nil {
		return ""
	}
	s := string(r.buf[:n])
	r.buf = r.buf[n:]
	return s
}

// bytes copies the field out, so the decoded message never aliases the
// input buffer; a zero length decodes as nil.
func (r *reader) bytes() []byte {
	if r.err != nil {
		return nil
	}
	n := r.count()
	if r.err != nil || n == 0 {
		return nil
	}
	b := make([]byte, n)
	copy(b, r.buf[:n])
	r.buf = r.buf[n:]
	return b
}

func (r *reader) bool() bool {
	if r.err != nil {
		return false
	}
	if len(r.buf) < 1 {
		r.err = errTruncated
		return false
	}
	b := r.buf[0]
	r.buf = r.buf[1:]
	if b > 1 {
		r.err = errBadBool
		return false
	}
	return b == 1
}

func (r *reader) ts() Timestamp {
	return Timestamp{Version: r.uvarint(), Site: int(r.varint())}
}
