package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Record is one durable store entry — the unit the WAL journals and
// snapshots stream. Its binary form is self-contained and decodable from
// any record boundary, the property that keeps multi-session journals
// replayable (PR 4's WAL bug class: a streaming gob encoder re-emits type
// descriptors on reopen and poisons everything after the first session).
type Record struct {
	Key   string
	Value []byte
	TS    Timestamp
}

// RecordMagic is the first byte of every binary-encoded record. The value
// is chosen from the range 0x80–0xF7, which can never start a gob stream
// (gob's leading segment length is either a single byte ≤ 0x7F or a
// multi-byte marker ≥ 0xF8), so one peeked byte tells a binary record from
// a legacy gob blob and old files keep replaying through the fallback.
const RecordMagic byte = 0xA6

// recordVersion is the record layout version.
const recordVersion byte = 1

// AppendRecord appends the record's binary encoding to dst:
// [magic][version][key][value][timestamp] with the codec's field
// primitives.
func AppendRecord(dst []byte, r Record) []byte {
	dst = append(dst, RecordMagic, recordVersion)
	dst = appendString(dst, r.Key)
	dst = appendBytes(dst, r.Value)
	return appendTS(dst, r.TS)
}

// ErrNotRecord reports that the buffer does not start with a binary
// record; callers holding possibly-legacy data fall back to gob on it.
var ErrNotRecord = errors.New("wire: not a binary record")

// DecodeRecord parses one binary-encoded record. The returned record never
// aliases data. A buffer that does not begin with RecordMagic fails with
// ErrNotRecord.
func DecodeRecord(data []byte) (Record, error) {
	if len(data) < 2 || data[0] != RecordMagic {
		return Record{}, ErrNotRecord
	}
	if data[1] != recordVersion {
		return Record{}, fmt.Errorf("wire: record version %d, want %d", data[1], recordVersion)
	}
	r := reader{buf: data[2:]}
	rec := Record{Key: r.str(), Value: r.bytes(), TS: r.ts()}
	if r.err != nil {
		return Record{}, fmt.Errorf("wire: decode record: %w", r.err)
	}
	if len(r.buf) != 0 {
		return Record{}, fmt.Errorf("wire: decode record: %d trailing bytes", len(r.buf))
	}
	return rec, nil
}

// Snapshot framing: a snapshot file is [SnapshotMagic][version] followed by
// length-prefixed records ([4-byte big-endian length][record]) until EOF.
// Like RecordMagic, SnapshotMagic can never start a gob stream, so Restore
// distinguishes the formats from the first byte.

// SnapshotMagic is the first byte of a binary snapshot file.
const SnapshotMagic byte = 0xA7

// snapshotVersion is the snapshot framing version.
const snapshotVersion byte = 1

// SnapshotHeader returns the two-byte header that opens a binary snapshot.
func SnapshotHeader() []byte { return []byte{SnapshotMagic, snapshotVersion} }

// CheckSnapshotHeader validates a snapshot header previously read from a
// file.
func CheckSnapshotHeader(hdr []byte) error {
	if len(hdr) < 2 || hdr[0] != SnapshotMagic {
		return ErrNotRecord
	}
	if hdr[1] != snapshotVersion {
		return fmt.Errorf("wire: snapshot version %d, want %d", hdr[1], snapshotVersion)
	}
	return nil
}

// MaxRecord bounds one record's encoded size during replay, so a corrupt
// length prefix cannot ask for an absurd allocation.
const MaxRecord = 1 << 24

// AppendFramedRecord appends [length][record] to dst — the framing the WAL
// and snapshots share.
func AppendFramedRecord(dst []byte, r Record) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	dst = AppendRecord(dst, r)
	binary.BigEndian.PutUint32(dst[start:], uint32(len(dst)-start-4))
	return dst
}
