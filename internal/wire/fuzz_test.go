package wire

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzWireRoundTrip drives fuzzed field values through every message shape
// and checks the binary codec's core property: encode→decode→encode is a
// byte-level fixpoint and the decoded message equals the original.
func FuzzWireRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint64(2), int64(-3), "key", []byte("value"), true, false)
	f.Add(uint64(0), uint64(0), int64(0), "", []byte(nil), false, false)
	f.Add(^uint64(0), uint64(1)<<60, int64(-1)<<40, "λ/с/日", bytes.Repeat([]byte{0xFF}, 300), true, true)
	f.Fuzz(func(t *testing.T, id, tx uint64, site int64, key string, value []byte, b1, b2 bool) {
		ts := Timestamp{Version: tx, Site: int(site)}
		// tx doubles as the fuzzed deadline so the millis-remaining field
		// sees the full uint64 range without widening the seed signature.
		msgs := []any{
			VersionReq{ReqID: id, Key: key, ForWrite: b1, DeadlineMillis: tx},
			VersionResp{ReqID: id, Key: key, TS: ts, Found: b1, Refused: b2},
			ReadReq{ReqID: id, Key: key, DeadlineMillis: tx},
			ReadResp{ReqID: id, Key: key, Value: value, TS: ts, Found: b1, Refused: b2},
			PrepareReq{ReqID: id, TxID: tx, Key: key, TS: ts, DeadlineMillis: tx},
			PrepareResp{ReqID: id, TxID: tx, OK: b1, Reason: key},
			CommitReq{ReqID: id, TxID: tx, Key: key, Value: value, TS: ts, DeadlineMillis: tx},
			CommitResp{ReqID: id, TxID: tx, OK: b2},
			AbortReq{ReqID: id, TxID: tx, Key: key, DeadlineMillis: tx},
			AbortResp{ReqID: id, TxID: tx},
			SyncDigestReq{ReqID: id, StartAfter: key, Limit: int(site), DeadlineMillis: tx},
			SyncDigestResp{ReqID: id, Entries: []DigestEntry{{Key: key, TS: ts}}, More: b1},
			SyncFetchReq{ReqID: id, Keys: []string{key, "second"}, DeadlineMillis: tx},
			SyncFetchResp{ReqID: id, Items: []SyncItem{{Key: key, Value: value, TS: ts, Found: b1}}},
			PingReq{ReqID: id, DeadlineMillis: tx},
			PingResp{ReqID: id, Site: int(site)},
			OverloadedResp{ReqID: id, RetryAfterMillis: tx},
		}
		c := Binary()
		for _, msg := range msgs {
			enc, err := c.Encode(nil, msg)
			if err != nil {
				t.Fatalf("encode %T: %v", msg, err)
			}
			dec, err := c.Decode(enc)
			if err != nil {
				t.Fatalf("decode %T: %v (bytes %x)", msg, err, enc)
			}
			// nil and empty byte slices both decode as nil; normalize the
			// expectation for the equality check.
			want := msg
			if len(value) == 0 {
				switch m := want.(type) {
				case ReadResp:
					m.Value = nil
					want = m
				case CommitReq:
					m.Value = nil
					want = m
				case SyncFetchResp:
					m.Items[0].Value = nil
					want = m
				}
			}
			if !reflect.DeepEqual(dec, want) {
				t.Fatalf("round trip %T:\n got %#v\nwant %#v", msg, dec, want)
			}
			enc2, err := c.Encode(nil, dec)
			if err != nil {
				t.Fatalf("re-encode %T: %v", msg, err)
			}
			if !bytes.Equal(enc, enc2) {
				t.Fatalf("%T not a fixpoint:\n %x\n %x", msg, enc, enc2)
			}
		}
	})
}

// FuzzBinaryDecode throws raw bytes at the decoder: it must reject or
// decode, never panic or over-allocate, and anything it accepts must
// re-encode to exactly the input (the decoder admits no non-canonical
// encodings beyond varint slack, which re-encoding canonicalizes — assert
// only on a second round trip).
func FuzzBinaryDecode(f *testing.F) {
	c := Binary()
	for _, v := range vectors() {
		enc, err := c.Encode(nil, v.msg)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	f.Add([]byte{})
	f.Add([]byte{binaryVersion, tagSyncDigestResp, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	// A version-1 legacy frame (read_req without the trailing deadline):
	// the decoder must keep accepting the old layout.
	f.Add([]byte{binaryVersionLegacy, tagReadReq, 1, 1, 'k'})
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := c.Decode(data)
		if err != nil {
			return
		}
		enc, err := c.Encode(nil, msg)
		if err != nil {
			t.Fatalf("accepted message %#v does not re-encode: %v", msg, err)
		}
		dec, err := c.Decode(enc)
		if err != nil {
			t.Fatalf("re-encoded bytes do not decode: %v", err)
		}
		if !reflect.DeepEqual(dec, msg) {
			t.Fatalf("second round trip diverged:\n got %#v\nwant %#v", dec, msg)
		}
	})
}
