package rpc

import (
	"errors"
	"math/rand"
	"sync"
	"time"

	"arbor/internal/obs"
	"arbor/internal/transport"
)

// ErrBreakerOpen is wrapped into the error returned when a call is refused
// locally because the destination site's circuit breaker is open. Unlike
// ErrTimeout it costs nothing: no message is sent and no deadline burned,
// so callers can fall through to another site immediately.
var ErrBreakerOpen = errors.New("rpc: circuit breaker open")

// BreakerState is the observable state of one site's circuit breaker.
type BreakerState int

// Breaker states.
const (
	// BreakerClosed: calls flow normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen: calls fast-fail with ErrBreakerOpen until the cooldown
	// expires (ForceProbe bypasses).
	BreakerOpen
	// BreakerHalfOpen: the cooldown expired; the next call through is
	// admitted as a single probe whose outcome closes or re-opens the
	// breaker.
	BreakerHalfOpen
)

// String renders the conventional state name.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// BreakerConfig tunes the per-site circuit breakers.
type BreakerConfig struct {
	// Threshold is the run of consecutive failures that opens the circuit
	// (default 4).
	Threshold int
	// Cooldown is the initial open interval before a probe is admitted
	// (default 1s); each failed probe doubles it up to MaxCooldown
	// (default 16×Cooldown). Actual intervals are jittered in [½d, 1½d).
	Cooldown    time.Duration
	MaxCooldown time.Duration
	// Seed drives the jitter.
	Seed int64
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold <= 0 {
		c.Threshold = 4
	}
	if c.Cooldown <= 0 {
		c.Cooldown = time.Second
	}
	if c.MaxCooldown <= 0 {
		c.MaxCooldown = 16 * c.Cooldown
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// breakerSet holds one breaker per destination site a caller has talked to.
type breakerSet struct {
	cfg BreakerConfig

	mu  sync.Mutex
	rng *rand.Rand
	m   map[transport.Addr]*breaker

	// Optional instruments, wired by NewCaller when metrics are on.
	transitions *obs.CounterVec // destination state: open | half_open | closed
	fastFails   *obs.Counter
}

// breaker is one site's state machine. Half-open is derived, not stored: an
// open breaker whose cooldown has expired admits a single probe.
type breaker struct {
	open     bool
	fails    int           // consecutive failures while closed
	cooldown time.Duration // current (pre-jitter) open interval
	until    time.Time     // when the open interval ends
	probing  bool          // a half-open probe is in flight
}

func newBreakerSet(cfg BreakerConfig) *breakerSet {
	cfg = cfg.withDefaults()
	return &breakerSet{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
		m:   make(map[transport.Addr]*breaker),
	}
}

func (s *breakerSet) get(to transport.Addr) *breaker {
	b, ok := s.m[to]
	if !ok {
		b = &breaker{}
		s.m[to] = b
	}
	return b
}

// admit decides whether a call to the site may proceed; probe marks the
// call as the half-open probe (its outcome resolves the breaker).
func (s *breakerSet) admit(to transport.Addr) (ok, probe bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.get(to)
	if !b.open {
		return true, false
	}
	if time.Now().Before(b.until) || b.probing {
		if s.fastFails != nil {
			s.fastFails.Inc()
		}
		return false, false
	}
	b.probing = true
	s.record("half_open")
	return true, true
}

// success closes the breaker (if open) and clears the failure run.
func (s *breakerSet) success(to transport.Addr) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.get(to)
	b.probing = false
	b.fails = 0
	if b.open {
		b.open = false
		b.cooldown = 0
		s.record("closed")
	}
}

// failure counts a failed call: while closed it advances the consecutive-
// failure run toward Threshold; while open (a failed probe or forced call)
// it doubles the cooldown, capped at MaxCooldown.
func (s *breakerSet) failure(to transport.Addr) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.get(to)
	b.probing = false
	if b.open {
		if b.cooldown *= 2; b.cooldown > s.cfg.MaxCooldown {
			b.cooldown = s.cfg.MaxCooldown
		}
		b.until = time.Now().Add(s.jitter(b.cooldown))
		s.record("open")
		return
	}
	if b.fails++; b.fails >= s.cfg.Threshold {
		b.open = true
		b.cooldown = s.cfg.Cooldown
		b.until = time.Now().Add(s.jitter(b.cooldown))
		s.record("open")
	}
}

// release abandons an in-flight probe without a verdict (the caller's
// context was cancelled, so the site was never really tested).
func (s *breakerSet) release(to transport.Addr) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.get(to).probing = false
}

// state reports the site's observable breaker state.
func (s *breakerSet) state(to transport.Addr) BreakerState {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.m[to]
	switch {
	case !ok || !b.open:
		return BreakerClosed
	case time.Now().Before(b.until) || b.probing:
		return BreakerOpen
	default:
		return BreakerHalfOpen
	}
}

// states snapshots every tracked site's state.
func (s *breakerSet) states() map[transport.Addr]BreakerState {
	s.mu.Lock()
	now := time.Now()
	out := make(map[transport.Addr]BreakerState, len(s.m))
	for to, b := range s.m {
		switch {
		case !b.open:
			out[to] = BreakerClosed
		case now.Before(b.until) || b.probing:
			out[to] = BreakerOpen
		default:
			out[to] = BreakerHalfOpen
		}
	}
	s.mu.Unlock()
	return out
}

// jitter spreads d uniformly over [½d, 1½d) so synchronized failures don't
// re-probe in lockstep.
func (s *breakerSet) jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	return d/2 + time.Duration(s.rng.Int63n(int64(d)))
}

func (s *breakerSet) record(state string) {
	if s.transitions != nil {
		s.transitions.With(state).Inc()
	}
}
