package rpc

import (
	"context"
	"errors"
	"testing"
	"time"

	"arbor/internal/replica"
	"arbor/internal/transport"
)

// TestBreakerStateMachine drives one site's breaker through the full
// closed → open → half-open → closed/reopen cycle directly.
func TestBreakerStateMachine(t *testing.T) {
	s := newBreakerSet(BreakerConfig{Threshold: 3, Cooldown: 10 * time.Millisecond, Seed: 7})
	site := transport.Addr(1)

	if st := s.state(site); st != BreakerClosed {
		t.Fatalf("initial state = %v, want closed", st)
	}
	// Two failures: still closed; a success resets the run.
	s.failure(site)
	s.failure(site)
	s.success(site)
	s.failure(site)
	s.failure(site)
	if st := s.state(site); st != BreakerClosed {
		t.Fatalf("state after interrupted run = %v, want closed", st)
	}
	// Third consecutive failure trips it.
	s.failure(site)
	if st := s.state(site); st != BreakerOpen {
		t.Fatalf("state after threshold = %v, want open", st)
	}
	if ok, _ := s.admit(site); ok {
		t.Fatal("open breaker admitted a call")
	}

	// Cooldown (jittered into [5ms, 15ms)) expires: half-open, exactly one
	// probe admitted.
	time.Sleep(20 * time.Millisecond)
	if st := s.state(site); st != BreakerHalfOpen {
		t.Fatalf("state after cooldown = %v, want half-open", st)
	}
	ok, probe := s.admit(site)
	if !ok || !probe {
		t.Fatalf("half-open admit = (%v, %v), want (true, true)", ok, probe)
	}
	if ok, _ := s.admit(site); ok {
		t.Fatal("second call admitted while probe in flight")
	}

	// Failed probe: reopen with a doubled cooldown.
	s.failure(site)
	if st := s.state(site); st != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", st)
	}

	// A released probe (context cancelled) leaves the breaker testable.
	time.Sleep(45 * time.Millisecond) // doubled cooldown jitters into [10ms, 30ms)
	if ok, probe := s.admit(site); !ok || !probe {
		t.Fatal("no probe admitted after second cooldown")
	}
	s.release(site)
	ok, probe = s.admit(site)
	if !ok || !probe {
		t.Fatalf("admit after release = (%v, %v), want (true, true)", ok, probe)
	}

	// Successful probe closes the breaker.
	s.success(site)
	if st := s.state(site); st != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", st)
	}
	if ok, probe := s.admit(site); !ok || probe {
		t.Fatalf("closed admit = (%v, %v), want (true, false)", ok, probe)
	}
}

func TestBreakerCooldownCapped(t *testing.T) {
	s := newBreakerSet(BreakerConfig{Threshold: 1, Cooldown: time.Millisecond, MaxCooldown: 4 * time.Millisecond})
	site := transport.Addr(3)
	s.failure(site)
	for i := 0; i < 10; i++ {
		s.failure(site) // failed probes double the cooldown
	}
	s.mu.Lock()
	got := s.m[site].cooldown
	s.mu.Unlock()
	if got != 4*time.Millisecond {
		t.Errorf("cooldown after repeated failures = %v, want capped 4ms", got)
	}
}

func TestBreakerStateStrings(t *testing.T) {
	for st, want := range map[BreakerState]string{
		BreakerClosed:   "closed",
		BreakerOpen:     "open",
		BreakerHalfOpen: "half-open",
		BreakerState(9): "unknown",
	} {
		if got := st.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(st), got, want)
		}
	}
}

// deadPair returns a caller whose only peer never answers, with breakers
// armed.
func deadPair(t *testing.T, timeout time.Duration, cfg BreakerConfig) *Caller {
	t.Helper()
	n := transport.NewNetwork()
	if _, err := n.Register(1); err != nil { // registered but never reads
		t.Fatal(err)
	}
	cli, err := n.Register(-1)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCaller(cli, timeout, WithBreaker(cfg))
	t.Cleanup(func() {
		c.Close()
		n.Close()
	})
	return c
}

// TestCallerBreakerFastFails: once the breaker opens, calls fail in
// microseconds with ErrBreakerOpen instead of burning the full timeout.
func TestCallerBreakerFastFails(t *testing.T) {
	timeout := 20 * time.Millisecond
	c := deadPair(t, timeout, BreakerConfig{Threshold: 2, Cooldown: time.Minute})
	ping := replica.PingReq{}

	for i := 0; i < 2; i++ {
		if _, err := c.Call(context.Background(), 1, ping); !errors.Is(err, ErrTimeout) {
			t.Fatalf("call %d: err = %v, want timeout", i, err)
		}
	}
	if st := c.BreakerState(1); st != BreakerOpen {
		t.Fatalf("breaker state = %v, want open", st)
	}
	start := time.Now()
	_, err := c.Call(context.Background(), 1, ping)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("err = %v, want ErrBreakerOpen", err)
	}
	if elapsed >= timeout {
		t.Errorf("fast-fail took %v, should not burn the %v timeout", elapsed, timeout)
	}
	states := c.BreakerStates()
	if states[1] != BreakerOpen {
		t.Errorf("BreakerStates()[1] = %v, want open", states[1])
	}
}

// TestCallerForceProbe: ForceProbe bypasses an open breaker (the call really
// goes out and times out) and its failure keeps feeding the breaker.
func TestCallerForceProbe(t *testing.T) {
	c := deadPair(t, 15*time.Millisecond, BreakerConfig{Threshold: 1, Cooldown: time.Minute})
	ping := replica.PingReq{}

	if _, err := c.Call(context.Background(), 1, ping); !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want timeout", err)
	}
	if st := c.BreakerState(1); st != BreakerOpen {
		t.Fatalf("breaker state = %v, want open", st)
	}
	if _, err := c.Call(context.Background(), 1, ping, ForceProbe()); !errors.Is(err, ErrTimeout) {
		t.Fatalf("forced call err = %v, want ErrTimeout (went through the open breaker)", err)
	}
}

// TestCallerBreakerDisabled: without WithBreaker every call is admitted and
// state accessors report closed/nil.
func TestCallerBreakerDisabled(t *testing.T) {
	c, _ := newPair(t, time.Second)
	if st := c.BreakerState(1); st != BreakerClosed {
		t.Errorf("BreakerState = %v, want closed", st)
	}
	if states := c.BreakerStates(); states != nil {
		t.Errorf("BreakerStates = %v, want nil", states)
	}
}

// TestSendHook: SetSendHook observes fire-and-forget sends (the repair-test
// synchronization point).
func TestSendHook(t *testing.T) {
	c, _ := newPair(t, time.Second)
	got := make(chan transport.Addr, 1)
	c.SetSendHook(func(to transport.Addr, payload any) { got <- to })
	if err := c.Send(1, replica.PingReq{ReqID: 99}); err != nil {
		t.Fatal(err)
	}
	select {
	case to := <-got:
		if to != 1 {
			t.Errorf("hook saw send to %d, want 1", to)
		}
	case <-time.After(time.Second):
		t.Fatal("send hook never fired")
	}
	c.SetSendHook(nil)
	if err := c.Send(1, replica.PingReq{ReqID: 100}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-got:
		t.Fatal("hook fired after removal")
	default:
	}
}
