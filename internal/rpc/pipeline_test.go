package rpc

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"arbor/internal/replica"
	"arbor/internal/transport"
)

// shuffleEchoServer answers ReadReqs over a TCP endpoint, batching requests
// and replying in shuffled order — the adversarial schedule for pipelined
// response matching. PingReqs are answered immediately and in order.
func shuffleEchoServer(ep *transport.TCPEndpoint, batch int, rng *rand.Rand) {
	pending := make([]transport.Message, 0, batch)
	flush := func() {
		rng.Shuffle(len(pending), func(i, j int) { pending[i], pending[j] = pending[j], pending[i] })
		for _, msg := range pending {
			req := msg.Payload.(replica.ReadReq)
			_ = ep.Send(msg.From, replica.ReadResp{
				ReqID: req.ReqID,
				Key:   req.Key,
				Value: []byte(req.Key),
				Found: true,
			})
		}
		pending = pending[:0]
	}
	flushTick := time.NewTicker(5 * time.Millisecond)
	defer flushTick.Stop()
	for {
		select {
		case msg, ok := <-ep.Recv():
			if !ok {
				return
			}
			switch req := msg.Payload.(type) {
			case replica.ReadReq:
				pending = append(pending, msg)
				if len(pending) >= batch {
					flush()
				}
			case replica.PingReq:
				_ = ep.Send(msg.From, replica.PingResp{ReqID: req.ReqID, Site: 1})
			}
		case <-flushTick.C:
			flush()
		}
	}
}

// TestPipelinedCallsOverTCP drives many concurrent calls through the small
// fixed connection pool: responses come back batched and shuffled (out of
// order), some requests are cancelled mid-flight, and afterwards the same
// connections still serve — cancellation is per-request, never per-conn.
func TestPipelinedCallsOverTCP(t *testing.T) {
	n := transport.NewTCPNetwork()
	defer n.Close()
	srvConn, err := n.Listen(1)
	if err != nil {
		t.Fatal(err)
	}
	srv := srvConn.(*transport.TCPEndpoint)
	go shuffleEchoServer(srv, 16, rand.New(rand.NewSource(7)))

	cliConn, err := n.Dial(-1)
	if err != nil {
		t.Fatal(err)
	}
	cli := cliConn.(*transport.TCPEndpoint)
	c := NewCaller(cli, 5*time.Second)
	defer c.Close()

	const (
		inflight  = 200
		cancelled = 25 // the first N calls are cancelled mid-flight
	)
	ctx := context.Background()
	cancelCtx, cancel := context.WithCancel(ctx)
	var wg sync.WaitGroup
	errs := make([]error, inflight)
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			callCtx := ctx
			if i < cancelled {
				callCtx = cancelCtx
			}
			key := fmt.Sprintf("key-%d", i)
			resp, err := c.Call(callCtx, 1, replica.ReadReq{Key: key})
			if err != nil {
				errs[i] = err
				return
			}
			// Out-of-order matching must still pair each caller with its
			// own reply: the echoed key proves it.
			rr, ok := resp.(replica.ReadResp)
			if !ok || rr.Key != key || string(rr.Value) != key {
				errs[i] = fmt.Errorf("call %d got foreign reply %#v", i, resp)
			}
		}(i)
	}
	time.Sleep(10 * time.Millisecond) // let some cancelled calls get in flight
	cancel()
	wg.Wait()

	for i, err := range errs {
		if i < cancelled {
			// A cancelled call may have won its race with cancel(); both
			// outcomes are fine, but no foreign replies and no timeouts.
			if err != nil && !errors.Is(err, context.Canceled) {
				t.Errorf("cancelled call %d: %v", i, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("call %d: %v", i, err)
		}
	}

	// 200 pipelined calls must share the small fixed pool, not a socket
	// per request.
	if conns := cli.Conns(); conns == 0 || conns > 2 {
		t.Errorf("client pools %d connections, want 1-2", conns)
	}

	// The connections survived the cancellations: a fresh call on the same
	// pool still round-trips.
	if _, err := c.Call(ctx, 1, replica.PingReq{}); err != nil {
		t.Errorf("call after cancellations: %v", err)
	}
}
