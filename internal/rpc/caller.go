// Package rpc provides the request/response plumbing protocol clients use
// over the message transport: request-ID allocation, a reply dispatcher,
// and timeout-based calls. Both the arbitrary-protocol client and the
// tree-quorum comparator client are built on it.
package rpc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"arbor/internal/obs"
	"arbor/internal/replica"
	"arbor/internal/transport"
)

// ErrClosed is returned by Call after Close.
var ErrClosed = errors.New("rpc: caller closed")

// ErrTimeout is wrapped into the error returned when a call's reply
// deadline expires, so callers can distinguish timeouts (the failure
// detector firing) from other failures with errors.Is.
var ErrTimeout = errors.New("rpc: timed out")

// Option configures a Caller.
type Option func(*Caller)

// WithMetrics instruments the caller against the registry: a call-latency
// histogram and counters for calls issued and timeouts. A nil registry
// leaves the caller uninstrumented.
func WithMetrics(reg *obs.Registry) Option {
	return func(c *Caller) {
		if reg == nil {
			return
		}
		c.callDur = reg.Histogram("arbor_rpc_call_duration_seconds",
			"Round-trip latency of replica calls, including timed-out calls.")
		c.calls = reg.Counter("arbor_rpc_calls_total",
			"Replica calls issued (each is one request message awaiting a reply).")
		c.timeouts = reg.Counter("arbor_rpc_timeouts_total",
			"Replica calls whose reply deadline expired (failure-detector hits).")
		c.sends = reg.Counter("arbor_rpc_sends_total",
			"Fire-and-forget payloads sent without awaiting a reply (read repair, gossip).")
	}
}

// Caller matches replica replies to outstanding requests by request ID.
// It is safe for concurrent use.
type Caller struct {
	ep      transport.Conn
	timeout time.Duration

	mu      sync.Mutex
	pending map[uint64]chan any
	closed  bool

	reqID atomic.Uint64

	// Optional instruments (nil when observability is off; recording on
	// nil obs instruments is a no-op, but the guards skip timestamping).
	callDur  *obs.Histogram
	calls    *obs.Counter
	timeouts *obs.Counter
	sends    *obs.Counter

	stop chan struct{}
	done chan struct{}
}

// NewCaller attaches a caller to the endpoint and starts its dispatcher.
func NewCaller(ep transport.Conn, timeout time.Duration, opts ...Option) *Caller {
	c := &Caller{
		ep:      ep,
		timeout: timeout,
		pending: make(map[uint64]chan any),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	for _, opt := range opts {
		opt(c)
	}
	go c.dispatch()
	return c
}

// Timeout returns the per-request reply deadline.
func (c *Caller) Timeout() time.Duration { return c.timeout }

// Close stops the dispatcher; outstanding calls fail with ErrClosed.
func (c *Caller) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		<-c.done
		return
	}
	c.closed = true
	for id, ch := range c.pending {
		close(ch)
		delete(c.pending, id)
	}
	c.mu.Unlock()
	close(c.stop)
	<-c.done
}

// Call sends one request — built by build with the allocated request ID —
// and waits for its reply, the timeout, or context cancellation.
func (c *Caller) Call(ctx context.Context, to transport.Addr, build func(reqID uint64) any) (any, error) {
	id := c.reqID.Add(1)
	ch := make(chan any, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	c.pending[id] = ch
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
	}()

	c.calls.Inc()
	var start time.Time
	if c.callDur != nil {
		start = time.Now()
	}
	if err := c.ep.Send(to, build(id)); err != nil {
		return nil, fmt.Errorf("rpc: send to %d: %w", to, err)
	}
	timer := time.NewTimer(c.timeout)
	defer timer.Stop()
	select {
	case resp, ok := <-ch:
		if !ok {
			return nil, ErrClosed
		}
		if c.callDur != nil {
			c.callDur.Observe(time.Since(start))
		}
		return resp, nil
	case <-timer.C:
		c.timeouts.Inc()
		if c.callDur != nil {
			c.callDur.Observe(time.Since(start))
		}
		return nil, fmt.Errorf("site %d: %w", to, ErrTimeout)
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Send transmits a payload without awaiting a reply (fire-and-forget).
func (c *Caller) Send(to transport.Addr, payload any) error {
	c.sends.Inc()
	return c.ep.Send(to, payload)
}

// dispatch routes replies to waiting calls.
func (c *Caller) dispatch() {
	defer close(c.done)
	for {
		select {
		case <-c.stop:
			return
		case msg := <-c.ep.Recv():
			id, ok := ReqIDOf(msg.Payload)
			if !ok {
				continue
			}
			c.mu.Lock()
			ch, ok := c.pending[id]
			if ok {
				delete(c.pending, id)
			}
			c.mu.Unlock()
			if ok {
				ch <- msg.Payload
			}
		}
	}
}

// ReqIDOf extracts the request ID from any known response payload.
func ReqIDOf(payload any) (uint64, bool) {
	switch m := payload.(type) {
	case replica.ReadResp:
		return m.ReqID, true
	case replica.VersionResp:
		return m.ReqID, true
	case replica.PrepareResp:
		return m.ReqID, true
	case replica.CommitResp:
		return m.ReqID, true
	case replica.AbortResp:
		return m.ReqID, true
	case replica.PingResp:
		return m.ReqID, true
	default:
		return 0, false
	}
}
