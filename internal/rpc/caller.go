// Package rpc provides the request/response plumbing protocol clients use
// over the message transport: request-ID allocation, a reply dispatcher,
// and timeout-based calls. Both the arbitrary-protocol client and the
// tree-quorum comparator client are built on it.
package rpc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"arbor/internal/obs"
	"arbor/internal/transport"
	"arbor/internal/wire"
)

// ErrClosed is returned by Call after Close.
var ErrClosed = errors.New("rpc: caller closed")

// ErrTimeout is wrapped into the error returned when a call's reply
// deadline expires, so callers can distinguish timeouts (the failure
// detector firing) from other failures with errors.Is.
var ErrTimeout = errors.New("rpc: timed out")

// Option configures a Caller.
type Option func(*Caller)

// WithMetrics instruments the caller against the registry: a call-latency
// histogram and counters for calls issued and timeouts. A nil registry
// leaves the caller uninstrumented.
func WithMetrics(reg *obs.Registry) Option {
	return func(c *Caller) {
		if reg == nil {
			return
		}
		c.callDur = reg.Histogram("arbor_rpc_call_duration_seconds",
			"Round-trip latency of replica calls, including timed-out calls.")
		c.calls = reg.Counter("arbor_rpc_calls_total",
			"Replica calls issued (each is one request message awaiting a reply).")
		c.timeouts = reg.Counter("arbor_rpc_timeouts_total",
			"Replica calls whose reply deadline expired (failure-detector hits).")
		c.sends = reg.Counter("arbor_rpc_sends_total",
			"Fire-and-forget payloads sent without awaiting a reply (read repair, gossip).")
		c.breakerTransitions = reg.CounterVec("arbor_rpc_breaker_transitions_total",
			"Circuit-breaker state transitions, by destination state (open counts re-opens after failed probes).",
			"state")
		c.breakerFastFails = reg.Counter("arbor_rpc_breaker_fastfails_total",
			"Calls refused locally because the destination site's circuit breaker was open.")
		c.overloads = reg.Counter("arbor_rpc_overloaded_total",
			"Calls answered by a replica's admission gate with a load-shed reply.")
		c.deadlineSkips = reg.Counter("arbor_rpc_deadline_skips_total",
			"Calls failed locally because the caller's deadline budget was already spent.")
	}
}

// WithBreaker arms a per-site circuit breaker: after BreakerConfig.Threshold
// consecutive failures to a site, further calls to it fast-fail with
// ErrBreakerOpen (no message, no timeout) until a cooldown expires and a
// single half-open probe decides whether to close again. ForceProbe on an
// individual Call bypasses the fast-fail.
func WithBreaker(cfg BreakerConfig) Option {
	return func(c *Caller) {
		c.breakers = newBreakerSet(cfg)
	}
}

// CallOption adjusts a single Call.
type CallOption func(*callConfig)

type callConfig struct {
	force bool
}

// ForceProbe lets the call through an open circuit breaker. Use it when the
// call must be attempted regardless of the site's recent history: phase-two
// commits (every prepared site has to hear the decision) and last-resort
// availability rescues. The outcome still feeds the breaker.
func ForceProbe() CallOption {
	return func(cc *callConfig) { cc.force = true }
}

// Caller matches replica replies to outstanding requests by request ID.
// It is safe for concurrent use.
type Caller struct {
	ep      transport.Conn
	timeout time.Duration

	mu      sync.Mutex
	pending map[uint64]chan any
	closed  bool

	reqID atomic.Uint64

	// breakers is the optional per-site circuit-breaker set (nil when
	// WithBreaker was not given: every call is admitted).
	breakers *breakerSet

	// sendHook, when set, observes every fire-and-forget Send (test
	// synchronization for repair traffic).
	sendHook func(to transport.Addr, payload any)

	// Optional instruments (nil when observability is off; recording on
	// nil obs instruments is a no-op, but the guards skip timestamping).
	callDur            *obs.Histogram
	calls              *obs.Counter
	timeouts           *obs.Counter
	sends              *obs.Counter
	breakerTransitions *obs.CounterVec
	breakerFastFails   *obs.Counter
	overloads          *obs.Counter
	deadlineSkips      *obs.Counter

	stop chan struct{}
	done chan struct{}
}

// NewCaller attaches a caller to the endpoint and starts its dispatcher.
func NewCaller(ep transport.Conn, timeout time.Duration, opts ...Option) *Caller {
	c := &Caller{
		ep:      ep,
		timeout: timeout,
		pending: make(map[uint64]chan any),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	for _, opt := range opts {
		opt(c)
	}
	if c.breakers != nil {
		c.breakers.transitions = c.breakerTransitions
		c.breakers.fastFails = c.breakerFastFails
	}
	go c.dispatch()
	return c
}

// BreakerState reports the site's circuit-breaker state (BreakerClosed when
// breakers are disabled).
func (c *Caller) BreakerState(to transport.Addr) BreakerState {
	if c.breakers == nil {
		return BreakerClosed
	}
	return c.breakers.state(to)
}

// BreakerStates snapshots the breaker state of every site this caller has
// tracked; nil when breakers are disabled.
func (c *Caller) BreakerStates() map[transport.Addr]BreakerState {
	if c.breakers == nil {
		return nil
	}
	return c.breakers.states()
}

// Timeout returns the per-request reply deadline.
func (c *Caller) Timeout() time.Duration { return c.timeout }

// Close stops the dispatcher; outstanding calls fail with ErrClosed.
func (c *Caller) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		<-c.done
		return
	}
	c.closed = true
	for id, ch := range c.pending {
		close(ch)
		delete(c.pending, id)
	}
	c.mu.Unlock()
	close(c.stop)
	<-c.done
}

// replyChanPool recycles reply channels across calls. A channel is only
// returned to the pool when ownership is provably exclusive and the buffer
// provably empty: either the caller received the reply, or the caller's
// deferred cleanup found the pending entry unclaimed (the dispatcher sends
// exactly once, and only after claiming the entry under the mutex).
// Channels closed by Close are never recycled.
var replyChanPool = sync.Pool{New: func() any { return make(chan any, 1) }}

// Call sends one request — req, stamped with the allocated request ID —
// and waits for its reply, the timeout, or context cancellation. Because
// the ID is stamped per call, one request value can be fanned out to many
// sites. With a circuit breaker armed, a call to a site whose breaker is
// open fast-fails with ErrBreakerOpen (unless ForceProbe is given), and
// every real outcome feeds the breaker; context cancellation is not
// counted against the site — and, over the TCP transport, cancels only
// this request, never the multiplexed connection under it.
func (c *Caller) Call(ctx context.Context, to transport.Addr, req Request, opts ...CallOption) (any, error) {
	var cc callConfig
	for _, opt := range opts {
		opt(&cc)
	}
	// The attempt's reply deadline is the smaller of the per-request
	// timeout and the caller's remaining context budget, so a retry or
	// rescue pass late in an operation never overshoots the operation's
	// deadline. A spent budget fails locally before any message is sent.
	attempt := c.timeout
	var budget time.Duration
	if deadline, ok := ctx.Deadline(); ok {
		budget = time.Until(deadline)
		if budget <= 0 {
			c.deadlineSkips.Inc()
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return nil, fmt.Errorf("site %d: deadline spent: %w", to, ErrTimeout)
		}
		if budget < attempt {
			attempt = budget
		}
	}
	probe := false
	if c.breakers != nil && !cc.force {
		ok, p := c.breakers.admit(to)
		if !ok {
			return nil, fmt.Errorf("site %d: %w", to, ErrBreakerOpen)
		}
		probe = p
	}
	id := c.reqID.Add(1)
	ch := replyChanPool.Get().(chan any)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		replyChanPool.Put(ch)
		if probe {
			c.breakers.release(to)
		}
		return nil, ErrClosed
	}
	c.pending[id] = ch
	c.mu.Unlock()
	received := false
	defer func() {
		c.mu.Lock()
		_, unclaimed := c.pending[id]
		if unclaimed {
			delete(c.pending, id)
		}
		c.mu.Unlock()
		if unclaimed || received {
			replyChanPool.Put(ch)
		}
	}()

	c.calls.Inc()
	var start time.Time
	if c.callDur != nil {
		start = time.Now()
	}
	payload := req.WithReqID(id)
	if budget > 0 {
		if dc, ok := payload.(wire.DeadlineCarrier); ok {
			// Round up so a sub-millisecond budget still rides as 1ms
			// rather than degenerating to "no deadline".
			millis := uint64((budget + time.Millisecond - 1) / time.Millisecond)
			payload = dc.WithDeadline(millis)
		}
	}
	if err := c.ep.Send(to, payload); err != nil {
		if c.breakers != nil {
			c.breakers.failure(to)
		}
		return nil, fmt.Errorf("rpc: send to %d: %w", to, err)
	}
	timer := time.NewTimer(attempt)
	defer timer.Stop()
	select {
	case resp, ok := <-ch:
		if !ok {
			if c.breakers != nil {
				c.breakers.release(to)
			}
			return nil, ErrClosed
		}
		received = true
		if c.callDur != nil {
			c.callDur.Observe(time.Since(start))
		}
		if c.breakers != nil {
			// An overload reply counts as breaker success: the site
			// answered instantly, it is alive — just refusing work.
			c.breakers.success(to)
		}
		if ov, shed := resp.(wire.OverloadedResp); shed {
			c.overloads.Inc()
			return nil, &overloadedError{site: to, retryAfter: time.Duration(ov.RetryAfterMillis) * time.Millisecond}
		}
		return resp, nil
	case <-timer.C:
		c.timeouts.Inc()
		if c.callDur != nil {
			c.callDur.Observe(time.Since(start))
		}
		if c.breakers != nil {
			c.breakers.failure(to)
		}
		return nil, fmt.Errorf("site %d: %w", to, ErrTimeout)
	case <-ctx.Done():
		if c.breakers != nil {
			c.breakers.release(to)
		}
		return nil, ctx.Err()
	}
}

// Send transmits a payload without awaiting a reply (fire-and-forget).
func (c *Caller) Send(to transport.Addr, payload any) error {
	c.sends.Inc()
	err := c.ep.Send(to, payload)
	c.mu.Lock()
	hook := c.sendHook
	c.mu.Unlock()
	if hook != nil {
		hook(to, payload)
	}
	return err
}

// SetSendHook installs fn to be invoked after every fire-and-forget Send
// (tests use it to wait for repair traffic instead of sleeping). Pass nil
// to remove it.
func (c *Caller) SetSendHook(fn func(to transport.Addr, payload any)) {
	c.mu.Lock()
	c.sendHook = fn
	c.mu.Unlock()
}

// dispatch routes replies to waiting calls.
func (c *Caller) dispatch() {
	defer close(c.done)
	for {
		select {
		case <-c.stop:
			return
		case msg := <-c.ep.Recv():
			id, ok := ReqIDOf(msg.Payload)
			if !ok {
				continue
			}
			c.mu.Lock()
			ch, ok := c.pending[id]
			if ok {
				delete(c.pending, id)
			}
			c.mu.Unlock()
			if ok {
				ch <- msg.Payload
			}
		}
	}
}

// ReqIDOf extracts the request ID from any known response payload.
func ReqIDOf(payload any) (uint64, bool) {
	switch m := payload.(type) {
	case wire.ReadResp:
		return m.ReqID, true
	case wire.VersionResp:
		return m.ReqID, true
	case wire.PrepareResp:
		return m.ReqID, true
	case wire.CommitResp:
		return m.ReqID, true
	case wire.AbortResp:
		return m.ReqID, true
	case wire.PingResp:
		return m.ReqID, true
	case wire.OverloadedResp:
		return m.ReqID, true
	default:
		return 0, false
	}
}
