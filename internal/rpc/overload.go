package rpc

import (
	"errors"
	"fmt"
	"time"

	"arbor/internal/transport"
)

// ErrOverloaded is the sentinel behind a replica's typed load-shed reply:
// the site's admission gate refused the request (queue full, saturated, or
// draining). Match it with errors.Is. Unlike ErrTimeout it arrives
// instantly and proves the site is alive, so callers should skip to
// another site without burning their deadline and without counting the
// site as failed.
var ErrOverloaded = errors.New("rpc: site overloaded")

// overloadedError carries the shedding site and its retry-after hint; it
// matches ErrOverloaded under errors.Is.
type overloadedError struct {
	site       transport.Addr
	retryAfter time.Duration
}

func (e *overloadedError) Error() string {
	if e.retryAfter > 0 {
		return fmt.Sprintf("site %d: %v (retry after %s)", e.site, ErrOverloaded, e.retryAfter)
	}
	return fmt.Sprintf("site %d: %v", e.site, ErrOverloaded)
}

func (e *overloadedError) Is(target error) bool { return target == ErrOverloaded }

func (e *overloadedError) Unwrap() error { return ErrOverloaded }

// RetryAfter extracts the shedding replica's backoff hint from an
// ErrOverloaded error chain; ok is false when err carries none.
func RetryAfter(err error) (d time.Duration, ok bool) {
	var oe *overloadedError
	if errors.As(err, &oe) {
		return oe.retryAfter, true
	}
	return 0, false
}
