package rpc

import "arbor/internal/wire"

// Codec is the versioned wire codec the rpc stack is serialized with —
// defined in internal/wire (the leaf package both rpc and transport build
// on) and re-exported here as the API surface callers configure. The
// facade forwards it as arbor.Codec / arbor.WithCodec.
type Codec = wire.Codec

// Request is a payload carrying a caller-allocated request ID; every
// protocol request type implements it. Call stamps the ID right before
// sending.
type Request = wire.Request

// BinaryCodec returns the default hand-rolled, length-prefixed binary
// codec.
func BinaryCodec() Codec { return wire.Binary() }

// GobCodec returns the legacy gob codec, retained for one release so
// deployments can roll the binary format out incrementally.
func GobCodec() Codec { return wire.Gob() }
