package rpc

import (
	"context"
	"errors"
	"testing"
	"time"

	"arbor/internal/replica"
	"arbor/internal/transport"
)

// echoServer answers pings and drops everything else.
func echoServer(ep *transport.Endpoint, site int) {
	for msg := range ep.Recv() {
		if req, ok := msg.Payload.(replica.PingReq); ok {
			_ = ep.Send(msg.From, replica.PingResp{ReqID: req.ReqID, Site: site})
		}
	}
}

func newPair(t *testing.T, timeout time.Duration) (*Caller, *transport.Network) {
	t.Helper()
	n := transport.NewNetwork()
	srv, err := n.Register(1)
	if err != nil {
		t.Fatal(err)
	}
	go echoServer(srv, 1)
	cli, err := n.Register(-1)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCaller(cli, timeout)
	t.Cleanup(func() {
		c.Close()
		n.Close()
	})
	return c, n
}

func TestCallRoundTrip(t *testing.T) {
	c, _ := newPair(t, time.Second)
	resp, err := c.Call(context.Background(), 1, replica.PingReq{})
	if err != nil {
		t.Fatal(err)
	}
	pong, ok := resp.(replica.PingResp)
	if !ok || pong.Site != 1 {
		t.Errorf("resp = %#v", resp)
	}
	if c.Timeout() != time.Second {
		t.Errorf("Timeout = %v", c.Timeout())
	}
}

func TestCallTimeout(t *testing.T) {
	c, _ := newPair(t, 30*time.Millisecond)
	// VersionReq is dropped by the echo server → timeout.
	_, err := c.Call(context.Background(), 1, replica.VersionReq{Key: "k"})
	if err == nil {
		t.Fatal("dropped request did not time out")
	}
}

func TestCallContextCancel(t *testing.T) {
	c, _ := newPair(t, 10*time.Second)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		// VersionReq is never answered by the echo server.
		_, err := c.Call(ctx, 1, replica.VersionReq{Key: "k"})
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	case <-time.After(time.Second):
		t.Fatal("call did not honor cancellation")
	}
}

func TestCallAfterClose(t *testing.T) {
	c, _ := newPair(t, time.Second)
	c.Close()
	c.Close() // idempotent
	if _, err := c.Call(context.Background(), 1, replica.PingReq{}); !errors.Is(err, ErrClosed) {
		t.Errorf("err = %v, want ErrClosed", err)
	}
}

func TestCallUnknownDestination(t *testing.T) {
	c, _ := newPair(t, time.Second)
	if _, err := c.Call(context.Background(), 99, replica.PingReq{}); err == nil {
		t.Error("unknown destination accepted")
	}
}

func TestFireAndForgetSend(t *testing.T) {
	c, _ := newPair(t, time.Second)
	if err := c.Send(1, replica.PingReq{}); err != nil {
		t.Errorf("Send: %v", err)
	}
}

func TestConcurrentCalls(t *testing.T) {
	c, _ := newPair(t, time.Second)
	const calls = 50
	errs := make(chan error, calls)
	for i := 0; i < calls; i++ {
		go func() {
			_, err := c.Call(context.Background(), 1, replica.PingReq{})
			errs <- err
		}()
	}
	for i := 0; i < calls; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestReqIDOfAllTypes(t *testing.T) {
	tests := []struct {
		payload any
		want    uint64
	}{
		{replica.ReadResp{ReqID: 1}, 1},
		{replica.VersionResp{ReqID: 2}, 2},
		{replica.PrepareResp{ReqID: 3}, 3},
		{replica.CommitResp{ReqID: 4}, 4},
		{replica.AbortResp{ReqID: 5}, 5},
		{replica.PingResp{ReqID: 6}, 6},
	}
	for _, tt := range tests {
		id, ok := ReqIDOf(tt.payload)
		if !ok || id != tt.want {
			t.Errorf("ReqIDOf(%T) = %d,%v", tt.payload, id, ok)
		}
	}
	if _, ok := ReqIDOf(42); ok {
		t.Error("int payload produced a request ID")
	}
}
