package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// numBuckets is the number of finite histogram buckets. Bucket i holds
// observations d with bound(i-1) < d <= bound(i), where
// bound(i) = 1µs · 2^i, spanning 1µs .. ~33.6s; larger observations land in
// the +Inf overflow bucket.
const numBuckets = 26

// bucketBound returns the upper bound of finite bucket i.
func bucketBound(i int) time.Duration {
	return time.Microsecond << uint(i)
}

// bucketIndex returns the bucket an observation belongs to (numBuckets for
// the +Inf overflow bucket).
func bucketIndex(d time.Duration) int {
	n := d.Nanoseconds()
	if n <= 1000 {
		return 0
	}
	q := uint64(n+999) / 1000 // ceil to whole microseconds
	idx := bits.Len64(q - 1)  // ceil(log2(q))
	if idx >= numBuckets {
		return numBuckets
	}
	return idx
}

// Histogram is a log-bucketed latency histogram: exponential (power-of-two)
// buckets from 1µs to ~33.6s plus an overflow bucket, all updated with a
// single atomic add per observation.
type Histogram struct {
	counts [numBuckets + 1]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Int64 // nanoseconds
}

func newHistogram() *Histogram { return &Histogram{} }

// NewHistogram creates a standalone histogram (outside any registry).
func NewHistogram() *Histogram { return newHistogram() }

// Observe records one latency sample. Safe on a nil receiver (no-op).
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.counts[bucketIndex(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(d.Nanoseconds())
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all observations (0 on a nil receiver).
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// Quantile estimates the q-th quantile (0 < q <= 1) by linear interpolation
// inside the bucket containing the target rank. Observations beyond the
// last finite bound are reported as that bound. Returns 0 when empty or on
// a nil receiver.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i := 0; i <= numBuckets; i++ {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		if cum+n >= target {
			if i == numBuckets {
				return bucketBound(numBuckets - 1)
			}
			lower := time.Duration(0)
			if i > 0 {
				lower = bucketBound(i - 1)
			}
			upper := bucketBound(i)
			frac := float64(target-cum) / float64(n)
			return lower + time.Duration(frac*float64(upper-lower))
		}
		cum += n
	}
	return bucketBound(numBuckets - 1)
}

// BucketCount is one bucket of a histogram snapshot.
type BucketCount struct {
	// UpperBound is the bucket's inclusive upper bound; 0 marks +Inf.
	UpperBound time.Duration
	// Count is the number of observations in this bucket (not cumulative).
	Count uint64
}

// Snapshot returns the per-bucket counts, total count and sum.
func (h *Histogram) Snapshot() (buckets []BucketCount, count uint64, sum time.Duration) {
	if h == nil {
		return nil, 0, 0
	}
	buckets = make([]BucketCount, 0, numBuckets+1)
	for i := 0; i < numBuckets; i++ {
		buckets = append(buckets, BucketCount{UpperBound: bucketBound(i), Count: h.counts[i].Load()})
	}
	buckets = append(buckets, BucketCount{UpperBound: 0, Count: h.counts[numBuckets].Load()})
	return buckets, h.count.Load(), h.Sum()
}

// write renders the histogram in Prometheus exposition format under the
// family name, merging the given label prefix into each le label.
func (h *Histogram) write(w io.Writer, name, labels string) error {
	joiner := func(le string) string {
		if labels == "" {
			return fmt.Sprintf(`{le="%s"}`, le)
		}
		return fmt.Sprintf(`%s,le="%s"}`, labels[:len(labels)-1], le)
	}
	var cum uint64
	for i := 0; i <= numBuckets; i++ {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < numBuckets {
			le = formatFloat(bucketBound(i).Seconds())
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, joiner(le), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatFloat(h.Sum().Seconds())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.count.Load())
	return err
}
