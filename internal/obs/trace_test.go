package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func record(r *TraceRecorder, key string) {
	op := r.Start("read", key, -1)
	span := op.Level(0, "read-quorum")
	span.Contact(1, "read", time.Now(), time.Microsecond, nil, false)
	span.Done(true, nil)
	op.Finish(OutcomeOK, nil, 1)
}

func TestTraceRingOrder(t *testing.T) {
	r := NewTraceRecorder(4)
	for i := 0; i < 10; i++ {
		record(r, fmt.Sprintf("k%d", i))
	}
	if r.Total() != 10 {
		t.Fatalf("Total = %d, want 10", r.Total())
	}
	got := r.Last(4)
	if len(got) != 4 {
		t.Fatalf("Last(4) returned %d traces", len(got))
	}
	for i, tr := range got {
		wantKey := fmt.Sprintf("k%d", 6+i)
		if tr.Key != wantKey {
			t.Errorf("trace %d: key %q, want %q (oldest first)", i, tr.Key, wantKey)
		}
		if tr.ID != uint64(7+i) {
			t.Errorf("trace %d: ID %d, want %d", i, tr.ID, 7+i)
		}
	}
}

func TestTraceLastSubset(t *testing.T) {
	r := NewTraceRecorder(8)
	for i := 0; i < 3; i++ {
		record(r, fmt.Sprintf("k%d", i))
	}
	if got := r.Last(2); len(got) != 2 || got[0].Key != "k1" || got[1].Key != "k2" {
		t.Fatalf("Last(2) = %+v, want k1,k2", got)
	}
	if got := r.Last(100); len(got) != 3 {
		t.Fatalf("Last(100) = %d traces, want all 3", len(got))
	}
	if got := r.Last(0); got != nil {
		t.Fatalf("Last(0) = %v, want nil", got)
	}
}

func TestTraceContents(t *testing.T) {
	r := NewTraceRecorder(2)
	op := r.Start("write", "k", -3)
	s0 := op.Level(1, "version-discovery")
	s0.Contact(4, "version", time.Now(), 2*time.Millisecond, nil, false)
	s0.Done(true, nil)
	s1 := op.Level(0, "write-2pc")
	s1.Contact(1, "prepare", time.Now(), 250*time.Millisecond, errors.New("deadline"), true)
	s1.Done(false, errors.New("level 0 unusable"))
	op.Finish(OutcomeUnavailable, errors.New("no quorum"), 2)

	tr := r.Last(1)[0]
	if tr.Op != "write" || tr.Key != "k" || tr.Client != -3 {
		t.Fatalf("header wrong: %+v", tr)
	}
	if tr.Outcome != OutcomeUnavailable || tr.Err == "" || tr.Contacts != 2 {
		t.Fatalf("outcome wrong: %+v", tr)
	}
	if len(tr.Attempts) != 2 {
		t.Fatalf("attempts = %d, want 2", len(tr.Attempts))
	}
	if a := tr.Attempts[0]; a.Level != 1 || a.Phase != "version-discovery" || !a.OK {
		t.Fatalf("attempt 0 wrong: %+v", a)
	}
	a := tr.Attempts[1]
	if a.OK || a.Err == "" {
		t.Fatalf("attempt 1 must carry the failure: %+v", a)
	}
	if len(a.Contacts) != 1 || !a.Contacts[0].TimedOut || a.Contacts[0].Site != 1 {
		t.Fatalf("timed-out contact not recorded: %+v", a.Contacts)
	}
	if _, err := json.Marshal(tr); err != nil {
		t.Fatalf("trace must be JSON-encodable: %v", err)
	}
}

func TestTraceNilSafe(t *testing.T) {
	var r *TraceRecorder
	op := r.Start("read", "k", 0)
	if op.On() {
		t.Fatal("nil recorder must hand out a dead op")
	}
	span := op.Level(0, "read-quorum")
	if span.On() {
		t.Fatal("dead op must hand out a dead span")
	}
	span.Contact(0, "read", time.Time{}, 0, nil, false)
	span.Done(true, nil)
	op.Finish(OutcomeOK, nil, 0) // none of this may panic
	if r.Total() != 0 || r.Last(5) != nil {
		t.Fatal("nil recorder must read as empty")
	}
}

func TestTraceConcurrentLevels(t *testing.T) {
	r := NewTraceRecorder(1)
	op := r.Start("read", "k", -1)
	var wg sync.WaitGroup
	for u := 0; u < 4; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			span := op.Level(u, "read-quorum")
			span.Contact(u, "read", time.Now(), time.Microsecond, nil, false)
			span.Done(true, nil)
		}(u)
	}
	wg.Wait()
	op.Finish(OutcomeOK, nil, 4)
	if got := r.Last(1)[0]; len(got.Attempts) != 4 {
		t.Fatalf("attempts = %d, want 4", len(got.Attempts))
	}
}

// BenchmarkInstrumentationOverhead compares the cost of recording one
// operation's metrics and trace against the nil-observer no-op path the
// runtime takes when observability is off.
func BenchmarkInstrumentationOverhead(b *testing.B) {
	run := func(b *testing.B, o *Observer) {
		reg := o.Reg()
		dur := reg.HistogramVec("bench_op_seconds", "", "op")
		readDur := dur.With("read")
		ops := reg.CounterVec("bench_ops_total", "", "op", "outcome")
		okOps := ops.With("read", OutcomeOK)
		rec := o.Rec()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			op := rec.Start("read", "key", -1)
			span := op.Level(0, "read-quorum")
			var cs time.Time
			if span.On() {
				cs = time.Now()
			}
			if span.On() {
				span.Contact(1, "read", cs, time.Since(cs), nil, false)
			}
			span.Done(true, nil)
			readDur.Observe(time.Microsecond)
			okOps.Inc()
			op.Finish(OutcomeOK, nil, 1)
		}
	}
	b.Run("off", func(b *testing.B) { run(b, nil) })
	b.Run("on", func(b *testing.B) { run(b, NewObserver(512)) })
}
