// Package obs is the runtime's observability layer: a lock-cheap metrics
// registry (atomic counters, gauges and log-bucketed latency histograms
// with quantile estimation, exposed in Prometheus text format) and a
// per-operation trace recorder capturing every level attempted, every site
// contacted, retries, timeouts and 2PC phase outcomes.
//
// Everything is nil-receiver safe: a nil *Registry hands out nil
// instruments, and recording on a nil instrument is a no-op, so
// instrumented hot paths cost a pointer check when observability is off.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// metricType enumerates the exposition types a family can have.
type metricType int

const (
	counterType metricType = iota
	gaugeType
	histogramType
	counterFuncType
	gaugeFuncType
)

func (t metricType) String() string {
	switch t {
	case counterType, counterFuncType:
		return "counter"
	case gaugeType, gaugeFuncType:
		return "gauge"
	default:
		return "histogram"
	}
}

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one. Safe on a nil receiver (no-op).
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n. Safe on a nil receiver (no-op).
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic float64 gauge.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v. Safe on a nil receiver (no-op).
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adjusts the gauge by delta with a CAS loop. Safe on a nil receiver
// (no-op).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// series is one labeled instance of a family.
type series struct {
	labels string // rendered {k="v",...} or ""
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family is one named metric with all its labeled series.
type family struct {
	name   string
	help   string
	typ    metricType
	labels []string

	mu     sync.Mutex
	series map[string]*series
	order  []string

	cfn func() uint64  // counterFuncType
	gfn func() float64 // gaugeFuncType
}

// Registry holds named metric families. All methods are safe for concurrent
// use and safe on a nil receiver (returning nil instruments).
type Registry struct {
	mu         sync.Mutex
	families   []*family
	byName     map[string]*family
	collectors []func()
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// family returns the named family, creating it on first use. Re-registering
// a name with a different type or label set is a programming error.
func (r *Registry) getFamily(name, help string, typ metricType, labels ...string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.typ != typ || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered as %v with labels %v (was %v, %v)",
				name, typ, labels, f.typ, f.labels))
		}
		return f
	}
	f := &family{
		name:   name,
		help:   help,
		typ:    typ,
		labels: append([]string(nil), labels...),
		series: make(map[string]*series),
	}
	r.byName[name] = f
	r.families = append(r.families, f)
	return f
}

// get returns the series for the rendered label string, creating it on
// first use.
func (f *family) get(labels string) *series {
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[labels]; ok {
		return s
	}
	s := &series{labels: labels}
	switch f.typ {
	case counterType:
		s.c = &Counter{}
	case gaugeType:
		s.g = &Gauge{}
	case histogramType:
		s.h = newHistogram()
	}
	f.series[labels] = s
	f.order = append(f.order, labels)
	return s
}

// renderLabels builds the {k="v",...} suffix for a label/value pairing.
func renderLabels(names, values []string) string {
	if len(names) != len(values) {
		panic(fmt.Sprintf("obs: %d label values for label names %v", len(values), names))
	}
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// Counter returns (creating if needed) the unlabeled counter name.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.getFamily(name, help, counterType).get("").c
}

// Gauge returns (creating if needed) the unlabeled gauge name.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.getFamily(name, help, gaugeType).get("").g
}

// Histogram returns (creating if needed) the unlabeled histogram name.
func (r *Registry) Histogram(name, help string) *Histogram {
	if r == nil {
		return nil
	}
	return r.getFamily(name, help, histogramType).get("").h
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — for wrapping pre-existing atomic totals without double counting.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	if r == nil {
		return
	}
	f := r.getFamily(name, help, counterFuncType)
	f.cfn = fn
}

// GaugeFunc registers a gauge whose value is read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	f := r.getFamily(name, help, gaugeFuncType)
	f.gfn = fn
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// CounterVec returns (creating if needed) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.getFamily(name, help, counterType, labels...)}
}

// With returns the counter for the given label values.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.get(renderLabels(v.f.labels, values)).c
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec returns (creating if needed) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{f: r.getFamily(name, help, gaugeType, labels...)}
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.f.get(renderLabels(v.f.labels, values)).g
}

// Reset drops every series of the family (used when a label dimension —
// e.g. the set of physical levels — changes shape at reconfiguration).
func (v *GaugeVec) Reset() {
	if v == nil {
		return
	}
	v.f.mu.Lock()
	v.f.series = make(map[string]*series)
	v.f.order = nil
	v.f.mu.Unlock()
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// HistogramVec returns (creating if needed) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	return &HistogramVec{f: r.getFamily(name, help, histogramType, labels...)}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.f.get(renderLabels(v.f.labels, values)).h
}

// OnCollect registers a callback run at the start of every exposition, for
// metrics that are computed rather than recorded (e.g. per-level load
// gauges derived from replica counters).
func (r *Registry) OnCollect(fn func()) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.collectors = append(r.collectors, fn)
	r.mu.Unlock()
}

// WritePrometheus renders every family in the Prometheus text exposition
// format (version 0.0.4), running collect callbacks first.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	var collectors []func()
	collectors = append(collectors, r.collectors...)
	r.mu.Unlock()
	for _, fn := range collectors {
		fn()
	}
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	for _, f := range fams {
		if err := f.write(w); err != nil {
			return err
		}
	}
	return nil
}

// write renders one family.
func (f *family) write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ); err != nil {
		return err
	}
	switch f.typ {
	case counterFuncType:
		_, err := fmt.Fprintf(w, "%s %d\n", f.name, f.cfn())
		return err
	case gaugeFuncType:
		_, err := fmt.Fprintf(w, "%s %s\n", f.name, formatFloat(f.gfn()))
		return err
	}
	f.mu.Lock()
	keys := append([]string(nil), f.order...)
	byKey := make(map[string]*series, len(keys))
	for _, k := range keys {
		byKey[k] = f.series[k]
	}
	f.mu.Unlock()
	sort.Strings(keys)
	for _, k := range keys {
		s := byKey[k]
		if s == nil {
			continue
		}
		switch f.typ {
		case counterType:
			if _, err := fmt.Fprintf(w, "%s%s %d\n", f.name, s.labels, s.c.Value()); err != nil {
				return err
			}
		case gaugeType:
			if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, formatFloat(s.g.Value())); err != nil {
				return err
			}
		case histogramType:
			if err := s.h.write(w, f.name, s.labels); err != nil {
				return err
			}
		}
	}
	return nil
}

// formatFloat renders a float the way Prometheus expects.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
