package obs

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_ops_total", "ops")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := reg.Gauge("test_depth", "depth")
	g.Set(2.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", got)
	}
	g.Add(-0.5)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge after Add = %v, want 2", got)
	}
}

func TestVecSeriesIdentity(t *testing.T) {
	reg := NewRegistry()
	v := reg.CounterVec("test_kinds_total", "kinds", "kind")
	a1 := v.With("a")
	a2 := v.With("a")
	if a1 != a2 {
		t.Fatal("With must return the same series for equal labels")
	}
	a1.Inc()
	if got := a2.Value(); got != 1 {
		t.Fatalf("shared series = %d, want 1", got)
	}
}

func TestRegistryReRegistration(t *testing.T) {
	reg := NewRegistry()
	c1 := reg.Counter("test_total", "help")
	c2 := reg.Counter("test_total", "help")
	if c1 != c2 {
		t.Fatal("re-registering the same family must return the same instrument")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("registering test_total as a gauge must panic")
		}
	}()
	reg.Gauge("test_total", "help")
}

func TestNilRegistrySafe(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x_total", "")
	c.Inc()
	g := reg.Gauge("x", "")
	g.Set(1)
	h := reg.Histogram("x_seconds", "")
	h.Observe(time.Second)
	v := reg.CounterVec("x_kinds", "", "k")
	v.With("a").Inc()
	hv := reg.HistogramVec("x_durs", "", "op")
	hv.With("read").Observe(time.Millisecond)
	reg.CounterFunc("x_fn", "", func() uint64 { return 1 })
	reg.OnCollect(func() {})
	if err := reg.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatalf("nil registry WritePrometheus: %v", err)
	}
}

// parsePromText validates the text exposition format line by line and
// returns the set of series names observed.
func parsePromText(t *testing.T, text string) map[string]int {
	t.Helper()
	series := make(map[string]int)
	typed := make(map[string]string)
	helped := make(map[string]bool)
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" {
			t.Fatalf("blank line in exposition")
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if helped[parts[0]] {
				t.Fatalf("duplicate HELP for %s", parts[0])
			}
			helped[parts[0]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) != 2 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			if _, dup := typed[parts[0]]; dup {
				t.Fatalf("duplicate TYPE for %s", parts[0])
			}
			switch parts[1] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("unknown type %q", parts[1])
			}
			typed[parts[0]] = parts[1]
			continue
		}
		// Sample line: name{labels} value  or  name value.
		rest := line
		name := rest
		if i := strings.IndexByte(rest, '{'); i >= 0 {
			name = rest[:i]
			j := strings.IndexByte(rest, '}')
			if j < i {
				t.Fatalf("unbalanced braces in %q", line)
			}
			rest = rest[j+1:]
		} else if i := strings.IndexByte(rest, ' '); i >= 0 {
			name = rest[:i]
			rest = rest[i:]
		}
		fields := strings.Fields(rest)
		if len(fields) != 1 {
			t.Fatalf("sample line %q must have exactly one value", line)
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if _, ok := typed[base]; !ok {
			if _, ok := typed[name]; !ok {
				t.Fatalf("sample %q has no TYPE header", name)
			}
		}
		series[line[:len(line)-len(rest)+0]]++
	}
	return series
}

func TestWritePrometheusValid(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("arbor_test_ops_total", "Total ops.").Add(3)
	reg.Gauge("arbor_test_depth", "Depth.").Set(1.5)
	h := reg.Histogram("arbor_test_latency_seconds", "Latency.")
	h.Observe(3 * time.Microsecond)
	h.Observe(2 * time.Millisecond)
	v := reg.CounterVec("arbor_test_kinds_total", "By kind.", "kind", "outcome")
	v.With("read", "ok").Add(2)
	v.With("write", "in doubt\\weird\"label\n").Inc()
	reg.CounterFunc("arbor_test_fn_total", "From closure.", func() uint64 { return 9 })
	var collected bool
	reg.OnCollect(func() { collected = true })

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !collected {
		t.Fatal("OnCollect callback did not run at scrape time")
	}
	text := sb.String()
	series := parsePromText(t, text)

	// No duplicate series.
	for s, n := range series {
		if n > 1 {
			t.Errorf("duplicate series %q", s)
		}
	}
	for _, want := range []string{
		"arbor_test_ops_total 3",
		"arbor_test_depth 1.5",
		"arbor_test_fn_total 9",
		`arbor_test_kinds_total{kind="read",outcome="ok"} 2`,
		"arbor_test_latency_seconds_count 2",
		`le="+Inf"`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n%s", want, text)
		}
	}
	// Escaped label values must not break the line structure.
	if !strings.Contains(text, `in doubt\\weird\"label\n`) {
		t.Errorf("label escaping wrong:\n%s", text)
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("arbor_cum_seconds", "c")
	h.Observe(time.Microsecond)     // bucket 0
	h.Observe(3 * time.Microsecond) // bucket 2
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, line := range strings.Split(sb.String(), "\n") {
		if !strings.HasPrefix(line, "arbor_cum_seconds_bucket") {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("bad bucket value in %q: %v", line, err)
		}
		if v < prev {
			t.Fatalf("bucket counts not cumulative at %q", line)
		}
		prev = v
	}
	if prev != 2 {
		t.Fatalf("+Inf bucket = %v, want 2", prev)
	}
}
