package obs

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestBucketBoundaries(t *testing.T) {
	// Exact powers of two land in the bucket whose upper bound they equal;
	// one nanosecond more spills into the next.
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{time.Nanosecond, 0},
		{time.Microsecond, 0},
		{time.Microsecond + time.Nanosecond, 1},
		{2 * time.Microsecond, 1},
		{2*time.Microsecond + time.Nanosecond, 2},
		{4 * time.Microsecond, 2},
		{time.Millisecond, 10}, // 1024µs bound is bucket 10
		{time.Second, 20},      // 1048576µs bound is bucket 20
		{time.Hour, numBuckets},
	}
	for _, c := range cases {
		if got := bucketIndex(c.d); got != c.want {
			t.Errorf("bucketIndex(%v) = %d, want %d", c.d, got, c.want)
		}
	}
	for i := 0; i < numBuckets; i++ {
		bound := bucketBound(i)
		if got := bucketIndex(bound); got != i {
			t.Errorf("bound %v of bucket %d indexed into bucket %d", bound, i, got)
		}
		if got := bucketIndex(bound + time.Nanosecond); got != i+1 {
			t.Errorf("just above bound %v: bucket %d, want %d", bound, got, i+1)
		}
	}
}

func TestHistogramCountSum(t *testing.T) {
	var h Histogram
	durs := []time.Duration{time.Microsecond, 3 * time.Microsecond, time.Millisecond}
	var sum time.Duration
	for _, d := range durs {
		h.Observe(d)
		sum += d
	}
	if h.Count() != uint64(len(durs)) {
		t.Fatalf("Count = %d, want %d", h.Count(), len(durs))
	}
	if h.Sum() != sum {
		t.Fatalf("Sum = %v, want %v", h.Sum(), sum)
	}
}

func TestQuantileUniform(t *testing.T) {
	// A uniform distribution over [0, 10ms]: the estimated quantiles must
	// land within one bucket width of the true values.
	var h Histogram
	rng := rand.New(rand.NewSource(42))
	const n = 100000
	for i := 0; i < n; i++ {
		h.Observe(time.Duration(rng.Int63n(int64(10 * time.Millisecond))))
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		got := h.Quantile(q)
		want := time.Duration(q * float64(10*time.Millisecond))
		// The bucket containing `want` spans [bound/2, bound], so the
		// interpolated estimate can be off by at most that bucket's width.
		idx := bucketIndex(want)
		tolerance := bucketBound(idx)
		if diff := (got - want).Abs(); diff > tolerance {
			t.Errorf("q=%.2f: got %v, want %v ± %v", q, got, want, tolerance)
		}
	}
}

func TestQuantilePointMass(t *testing.T) {
	// All mass in one bucket: every quantile must fall inside that bucket.
	var h Histogram
	const v = 100 * time.Microsecond
	for i := 0; i < 1000; i++ {
		h.Observe(v)
	}
	idx := bucketIndex(v)
	lo, hi := time.Duration(0), bucketBound(idx)
	if idx > 0 {
		lo = bucketBound(idx - 1)
	}
	for _, q := range []float64{0.01, 0.5, 0.999} {
		got := h.Quantile(q)
		if got < lo || got > hi {
			t.Errorf("q=%.3f: got %v outside bucket (%v, %v]", q, got, lo, hi)
		}
	}
}

func TestQuantileBimodal(t *testing.T) {
	// Half the mass near 10µs, half near 10ms: the median splits them and
	// p90 must sit in the slow mode.
	var h Histogram
	for i := 0; i < 500; i++ {
		h.Observe(10 * time.Microsecond)
		h.Observe(10 * time.Millisecond)
	}
	if p25 := h.Quantile(0.25); p25 > 100*time.Microsecond {
		t.Errorf("p25 = %v, want within the fast mode", p25)
	}
	if p90 := h.Quantile(0.90); p90 < time.Millisecond {
		t.Errorf("p90 = %v, want within the slow mode", p90)
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
	h.Observe(5 * time.Microsecond)
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := h.Quantile(q); got < 0 || got > bucketBound(numBuckets-1) {
			t.Errorf("q=%v: got %v out of range", q, got)
		}
	}
}

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Observe(time.Second) // must not panic
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram must read as empty")
	}
}

func TestQuantileMonotone(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10000; i++ {
		h.Observe(time.Duration(math.Abs(rng.NormFloat64()) * float64(time.Millisecond)))
	}
	prev := time.Duration(-1)
	for q := 0.05; q < 1; q += 0.05 {
		cur := h.Quantile(q)
		if cur < prev {
			t.Fatalf("quantile not monotone: q=%.2f gave %v after %v", q, cur, prev)
		}
		prev = cur
	}
}
