package obs

// Observer bundles the two observability surfaces — a metrics registry and
// an operation trace recorder — so runtime components can be handed one
// optional hook. A nil *Observer disables observability: every accessor
// returns nil, and the nil instruments no-op.
type Observer struct {
	// Registry collects counters, gauges and histograms.
	Registry *Registry
	// Traces retains the most recent per-operation traces.
	Traces *TraceRecorder
}

// DefaultTraceCapacity is the trace ring size NewObserver uses when given a
// non-positive capacity.
const DefaultTraceCapacity = 512

// NewObserver creates an observer with a fresh registry and a trace ring of
// the given capacity (DefaultTraceCapacity when <= 0).
func NewObserver(traceCapacity int) *Observer {
	if traceCapacity <= 0 {
		traceCapacity = DefaultTraceCapacity
	}
	return &Observer{Registry: NewRegistry(), Traces: NewTraceRecorder(traceCapacity)}
}

// Reg returns the observer's registry (nil on a nil observer).
func (o *Observer) Reg() *Registry {
	if o == nil {
		return nil
	}
	return o.Registry
}

// Rec returns the observer's trace recorder (nil on a nil observer).
func (o *Observer) Rec() *TraceRecorder {
	if o == nil {
		return nil
	}
	return o.Traces
}
