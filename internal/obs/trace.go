package obs

import (
	"sync"
	"time"
)

// Operation outcomes recorded on an OpTrace.
const (
	OutcomeOK          = "ok"
	OutcomeNotFound    = "not_found"
	OutcomeUnavailable = "unavailable"
	OutcomeInDoubt     = "in_doubt"
	OutcomeConflict    = "conflict"
	OutcomeError       = "error"
)

// SiteContact is one request sent to one replica site during an operation.
type SiteContact struct {
	Site     int           `json:"site"`
	Phase    string        `json:"phase"` // read | version | prepare | commit | abort
	Start    time.Time     `json:"start"`
	RTT      time.Duration `json:"rttNs"`
	TimedOut bool          `json:"timedOut,omitempty"`
	Err      string        `json:"err,omitempty"`
}

// LevelAttempt is one physical level's part in an operation: for reads, the
// site-by-site probe of one level; for writes, one 2PC attempt over a
// level's full membership (a failed attempt is followed by a fallback
// attempt on another level).
type LevelAttempt struct {
	Level    int           `json:"level"`
	Phase    string        `json:"phase"` // read-quorum | version-discovery | write-2pc
	Start    time.Time     `json:"start"`
	End      time.Time     `json:"end"`
	OK       bool          `json:"ok"`
	Err      string        `json:"err,omitempty"`
	Contacts []SiteContact `json:"contacts,omitempty"`
}

// OpTrace is the structured record of one client operation: every level
// attempted, every site contacted (with per-contact round-trip times,
// timeouts and 2PC phases), and the final outcome.
type OpTrace struct {
	ID       uint64         `json:"id"`
	Op       string         `json:"op"` // read | write | txn
	Key      string         `json:"key"`
	Client   int            `json:"client"`
	Start    time.Time      `json:"start"`
	End      time.Time      `json:"end"`
	Outcome  string         `json:"outcome"`
	Err      string         `json:"err,omitempty"`
	Contacts int            `json:"totalContacts"`
	Attempts []LevelAttempt `json:"attempts"`
}

// Duration returns the operation's wall time.
func (t OpTrace) Duration() time.Duration { return t.End.Sub(t.Start) }

// TraceRecorder keeps the last capacity finished operation traces in a ring
// buffer. It is safe for concurrent use and safe on a nil receiver.
type TraceRecorder struct {
	mu    sync.Mutex
	buf   []OpTrace
	next  int
	total uint64
	cap   int
}

// NewTraceRecorder creates a recorder retaining the last capacity traces
// (minimum 1).
func NewTraceRecorder(capacity int) *TraceRecorder {
	if capacity < 1 {
		capacity = 1
	}
	return &TraceRecorder{buf: make([]OpTrace, 0, capacity), cap: capacity}
}

// Start opens a trace for one operation. Returns nil (a no-op builder) on a
// nil recorder.
func (r *TraceRecorder) Start(op, key string, clientID int) *Op {
	if r == nil {
		return nil
	}
	return &Op{rec: r, t: OpTrace{Op: op, Key: key, Client: clientID, Start: time.Now()}}
}

// add appends a finished trace, evicting the oldest beyond capacity.
func (r *TraceRecorder) add(t OpTrace) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	t.ID = r.total
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, t)
		return
	}
	r.buf[r.next] = t
	r.next = (r.next + 1) % r.cap
}

// Total returns how many traces have ever been recorded.
func (r *TraceRecorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Last returns up to n of the most recent traces, oldest first.
func (r *TraceRecorder) Last(n int) []OpTrace {
	if r == nil || n <= 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	size := len(r.buf)
	if n > size {
		n = size
	}
	out := make([]OpTrace, 0, n)
	// Oldest entry is at r.next once the ring wrapped, 0 before that.
	start := 0
	if size == r.cap {
		start = r.next
	}
	for i := size - n; i < size; i++ {
		out = append(out, r.buf[(start+i)%size])
	}
	return out
}

// Op accumulates one operation's trace. All methods are safe on a nil
// receiver and safe for concurrent use (levels are probed in parallel).
type Op struct {
	rec *TraceRecorder
	mu  sync.Mutex
	t   OpTrace
}

// On reports whether tracing is live for this operation, letting hot paths
// skip timestamping work when it is not.
func (o *Op) On() bool { return o != nil }

// Level opens a level-attempt span within the operation.
func (o *Op) Level(level int, phase string) *LevelSpan {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	o.t.Attempts = append(o.t.Attempts, LevelAttempt{Level: level, Phase: phase, Start: time.Now()})
	idx := len(o.t.Attempts) - 1
	o.mu.Unlock()
	return &LevelSpan{op: o, idx: idx}
}

// Finish seals the trace with its outcome and hands it to the recorder.
func (o *Op) Finish(outcome string, err error, contacts int) {
	if o == nil {
		return
	}
	o.mu.Lock()
	o.t.End = time.Now()
	o.t.Outcome = outcome
	if err != nil {
		o.t.Err = err.Error()
	}
	o.t.Contacts = contacts
	t := o.t
	o.mu.Unlock()
	o.rec.add(t)
}

// LevelSpan records into one LevelAttempt of an Op.
type LevelSpan struct {
	op  *Op
	idx int
}

// On reports whether the span is live.
func (s *LevelSpan) On() bool { return s != nil }

// Contact records one request/response exchange with a site.
func (s *LevelSpan) Contact(site int, phase string, start time.Time, rtt time.Duration, err error, timedOut bool) {
	if s == nil {
		return
	}
	c := SiteContact{Site: site, Phase: phase, Start: start, RTT: rtt, TimedOut: timedOut}
	if err != nil {
		c.Err = err.Error()
	}
	s.op.mu.Lock()
	a := &s.op.t.Attempts[s.idx]
	a.Contacts = append(a.Contacts, c)
	s.op.mu.Unlock()
}

// Done seals the level attempt with its outcome.
func (s *LevelSpan) Done(ok bool, err error) {
	if s == nil {
		return
	}
	s.op.mu.Lock()
	a := &s.op.t.Attempts[s.idx]
	a.End = time.Now()
	a.OK = ok
	if err != nil {
		a.Err = err.Error()
	}
	s.op.mu.Unlock()
}
