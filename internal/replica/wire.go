package replica

import (
	"sync"

	"arbor/internal/transport"
)

var registerOnce sync.Once

// RegisterWireTypes registers every replica message type with the TCP
// transport's gob codec. It must be called once per process before running
// the protocol over TCP; it is a no-op for the in-memory transport and safe
// to call multiple times.
func RegisterWireTypes() {
	registerOnce.Do(func() {
		for _, v := range []any{
			VersionReq{}, VersionResp{},
			ReadReq{}, ReadResp{},
			PrepareReq{}, PrepareResp{},
			CommitReq{}, CommitResp{},
			AbortReq{}, AbortResp{},
			PingReq{}, PingResp{},
			SyncDigestReq{}, SyncDigestResp{},
			SyncFetchReq{}, SyncFetchResp{},
		} {
			transport.RegisterWireType(v)
		}
	})
}
