package replica

import "arbor/internal/wire"

// Bridges between the store's durability layers and the wire record
// format. The WAL and snapshots both persist store entries as
// self-contained, length-prefixed binary records (wire.Record); nothing on
// the request path — and, since the binary codec became the default,
// nothing here — touches gob. Legacy gob-encoded files are still read
// through the explicit fallbacks in wal.go and persist.go.

// appendStoreRecord appends one store entry in the framed binary record
// form shared by the WAL and snapshots.
func appendStoreRecord(dst []byte, key string, value []byte, ts Timestamp) []byte {
	return wire.AppendFramedRecord(dst, wire.Record{Key: key, Value: value, TS: ts})
}
