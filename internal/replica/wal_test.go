package replica

import (
	"os"
	"path/filepath"
	"testing"
)

func newWAL(t *testing.T) (*WAL, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "replica.wal")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = w.Close() })
	return w, path
}

func TestWALReplayRebuildsStore(t *testing.T) {
	w, path := newWAL(t)
	s := NewStore()
	s.AttachJournal(w)
	s.Apply("a", []byte("1"), Timestamp{Version: 1, Site: 1})
	s.Apply("b", []byte("2"), Timestamp{Version: 1, Site: 2})
	s.Apply("a", []byte("3"), Timestamp{Version: 2, Site: 1})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash-restart: a fresh store replays the log.
	fresh := NewStore()
	applied, err := ReplayWAL(path, fresh)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 3 {
		t.Errorf("replayed %d records, want 3", applied)
	}
	v, ts, _ := fresh.Get("a")
	if string(v) != "3" || ts.Version != 2 {
		t.Errorf("a = %q %v", v, ts)
	}
	v, _, _ = fresh.Get("b")
	if string(v) != "2" {
		t.Errorf("b = %q", v)
	}
}

func TestWALIgnoresIneffectiveApplies(t *testing.T) {
	w, path := newWAL(t)
	s := NewStore()
	s.AttachJournal(w)
	s.Apply("k", []byte("new"), Timestamp{Version: 5, Site: 1})
	// A stale apply must not reach the journal.
	s.Apply("k", []byte("old"), Timestamp{Version: 1, Site: 1})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	fresh := NewStore()
	applied, err := ReplayWAL(path, fresh)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 1 {
		t.Errorf("journal has %d records, want 1", applied)
	}
}

func TestWALReplayToleratesTornTail(t *testing.T) {
	w, path := newWAL(t)
	s := NewStore()
	s.AttachJournal(w)
	s.Apply("k", []byte("v"), Timestamp{Version: 1, Site: 1})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append by appending garbage bytes.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x01, 0x02}); err != nil {
		t.Fatal(err)
	}
	_ = f.Close()

	fresh := NewStore()
	applied, err := ReplayWAL(path, fresh)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 1 {
		t.Errorf("replayed %d records, want the 1 intact one", applied)
	}
}

func TestWALReplayOverSnapshotIsIdempotent(t *testing.T) {
	w, path := newWAL(t)
	s := NewStore()
	s.AttachJournal(w)
	s.Apply("k", []byte("v1"), Timestamp{Version: 1, Site: 1})
	s.Apply("k", []byte("v2"), Timestamp{Version: 2, Site: 1})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Replay twice: timestamp ordering keeps the result identical.
	fresh := NewStore()
	if _, err := ReplayWAL(path, fresh); err != nil {
		t.Fatal(err)
	}
	if _, err := ReplayWAL(path, fresh); err != nil {
		t.Fatal(err)
	}
	v, ts, _ := fresh.Get("k")
	if string(v) != "v2" || ts.Version != 2 {
		t.Errorf("k = %q %v", v, ts)
	}
}

func TestWALAppendAfterClose(t *testing.T) {
	w, _ := newWAL(t)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := w.Append("k", []byte("v"), Timestamp{Version: 1}); err == nil {
		t.Error("append after close succeeded")
	}
}

func TestWALErrors(t *testing.T) {
	if _, err := OpenWAL(filepath.Join(t.TempDir(), "missing", "dir.wal")); err == nil {
		t.Error("open in missing directory succeeded")
	}
	if _, err := ReplayWAL(filepath.Join(t.TempDir(), "absent.wal"), NewStore()); err == nil {
		t.Error("replay of absent file succeeded")
	}
	w, path := newWAL(t)
	if w.Path() != path {
		t.Errorf("Path = %q", w.Path())
	}
}

// TestWALAppendAcrossSessions pins the multi-incarnation case the chaos
// harness (internal/sim) first caught: a journal reopened by a second
// process incarnation must replay records from every session, not just the
// first. (A streaming gob encoder re-emits type descriptors on reopen,
// which a single-decoder replay mistakes for a torn tail.)
func TestWALAppendAcrossSessions(t *testing.T) {
	path := filepath.Join(t.TempDir(), "replica.wal")
	for session := 0; session < 3; session++ {
		w, err := OpenWAL(path)
		if err != nil {
			t.Fatal(err)
		}
		s := NewStore()
		if _, err := ReplayWAL(path, s); err != nil {
			t.Fatal(err)
		}
		s.AttachJournal(w)
		key := []string{"a", "b", "c"}[session]
		s.Apply(key, []byte(key), Timestamp{Version: uint64(session + 1), Site: 1})
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	fresh := NewStore()
	applied, err := ReplayWAL(path, fresh)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 3 {
		t.Fatalf("replayed %d records across 3 sessions, want 3", applied)
	}
	for _, key := range []string{"a", "b", "c"} {
		if v, _, ok := fresh.Get(key); !ok || string(v) != key {
			t.Errorf("key %q = %q, %v after multi-session replay", key, v, ok)
		}
	}
}
