package replica

import (
	"testing"
	"time"

	"arbor/internal/transport"
)

// harness wires one replica and one bare client endpoint on a network.
type harness struct {
	net    *transport.Network
	rep    *Replica
	client *transport.Endpoint
}

func newHarness(t *testing.T, opts ...Option) *harness {
	t.Helper()
	n := transport.NewNetwork()
	repEP, err := n.Register(1)
	if err != nil {
		t.Fatal(err)
	}
	cliEP, err := n.Register(-1)
	if err != nil {
		t.Fatal(err)
	}
	r := New(1, repEP, opts...)
	r.Start()
	t.Cleanup(func() {
		r.Stop()
		n.Close()
	})
	return &harness{net: n, rep: r, client: cliEP}
}

// call sends a request to the replica and waits for one reply.
func (h *harness) call(t *testing.T, payload any) any {
	t.Helper()
	if err := h.client.Send(1, payload); err != nil {
		t.Fatalf("send: %v", err)
	}
	select {
	case msg := <-h.client.Recv():
		return msg.Payload
	case <-time.After(2 * time.Second):
		t.Fatal("no reply from replica")
		return nil
	}
}

// expectSilence sends a request and asserts no reply arrives.
func (h *harness) expectSilence(t *testing.T, payload any) {
	t.Helper()
	if err := h.client.Send(1, payload); err != nil {
		t.Fatalf("send: %v", err)
	}
	select {
	case msg := <-h.client.Recv():
		t.Fatalf("unexpected reply %+v from crashed replica", msg.Payload)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestTimestampOrdering(t *testing.T) {
	tests := []struct {
		name string
		a, b Timestamp
		want bool // a.After(b)
	}{
		{name: "higher version", a: Timestamp{Version: 2, Site: 5}, b: Timestamp{Version: 1, Site: 1}, want: true},
		{name: "lower version", a: Timestamp{Version: 1, Site: 1}, b: Timestamp{Version: 2, Site: 5}, want: false},
		{name: "tie lower site wins", a: Timestamp{Version: 3, Site: 1}, b: Timestamp{Version: 3, Site: 2}, want: true},
		{name: "tie higher site loses", a: Timestamp{Version: 3, Site: 4}, b: Timestamp{Version: 3, Site: 2}, want: false},
		{name: "equal", a: Timestamp{Version: 3, Site: 2}, b: Timestamp{Version: 3, Site: 2}, want: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.After(tt.b); got != tt.want {
				t.Errorf("%v.After(%v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
	if got := (Timestamp{Version: 4, Site: 2}).String(); got != "v4@s2" {
		t.Errorf("String = %q", got)
	}
}

func TestStoreApplyOrdering(t *testing.T) {
	s := NewStore()
	if _, _, found := s.Get("k"); found {
		t.Error("empty store found a key")
	}
	if !s.Apply("k", []byte("v1"), Timestamp{Version: 1, Site: 2}) {
		t.Error("first apply rejected")
	}
	// Same version from a higher site loses the tie-break.
	if s.Apply("k", []byte("v1b"), Timestamp{Version: 1, Site: 3}) {
		t.Error("tie-losing apply accepted")
	}
	// Same version from a lower site wins.
	if !s.Apply("k", []byte("v1c"), Timestamp{Version: 1, Site: 1}) {
		t.Error("tie-winning apply rejected")
	}
	// Older version never applies.
	if s.Apply("k", []byte("old"), Timestamp{Version: 0, Site: 0}) {
		t.Error("stale apply accepted")
	}
	v, ts, found := s.Get("k")
	if !found || string(v) != "v1c" || ts.Version != 1 || ts.Site != 1 {
		t.Errorf("Get = %q %v %v", v, ts, found)
	}
	if s.Len() != 1 || len(s.Keys()) != 1 {
		t.Errorf("Len=%d Keys=%v", s.Len(), s.Keys())
	}
	// Returned value is a copy.
	v[0] = 'X'
	v2, _, _ := s.Get("k")
	if string(v2) != "v1c" {
		t.Error("Get returned aliased storage")
	}
}

func TestReadAndVersionRequests(t *testing.T) {
	h := newHarness(t)
	// Read of a missing key.
	resp := h.call(t, ReadReq{ReqID: 1, Key: "x"})
	rr, ok := resp.(ReadResp)
	if !ok || rr.Found || rr.ReqID != 1 {
		t.Fatalf("resp = %+v", resp)
	}
	// Install a value directly, then read it back.
	h.rep.Store().Apply("x", []byte("hello"), Timestamp{Version: 3, Site: 2})
	resp = h.call(t, ReadReq{ReqID: 2, Key: "x"})
	rr = resp.(ReadResp)
	if !rr.Found || string(rr.Value) != "hello" || rr.TS.Version != 3 {
		t.Errorf("read = %+v", rr)
	}
	resp = h.call(t, VersionReq{ReqID: 3, Key: "x"})
	vr := resp.(VersionResp)
	if !vr.Found || vr.TS.Version != 3 || vr.TS.Site != 2 {
		t.Errorf("version = %+v", vr)
	}
}

func TestTwoPhaseCommitHappyPath(t *testing.T) {
	h := newHarness(t)
	ts := Timestamp{Version: 1, Site: -1}
	resp := h.call(t, PrepareReq{ReqID: 1, TxID: 10, Key: "k", TS: ts})
	pr := resp.(PrepareResp)
	if !pr.OK {
		t.Fatalf("prepare refused: %s", pr.Reason)
	}
	resp = h.call(t, CommitReq{ReqID: 2, TxID: 10, Key: "k", Value: []byte("v"), TS: ts})
	cr := resp.(CommitResp)
	if !cr.OK {
		t.Fatal("commit refused")
	}
	v, got, found := h.rep.Store().Get("k")
	if !found || string(v) != "v" || got != ts {
		t.Errorf("store = %q %v %v", v, got, found)
	}
}

func TestPrepareConflictAndAbort(t *testing.T) {
	h := newHarness(t)
	ts := Timestamp{Version: 1, Site: -1}
	if pr := h.call(t, PrepareReq{ReqID: 1, TxID: 10, Key: "k", TS: ts}).(PrepareResp); !pr.OK {
		t.Fatal("first prepare refused")
	}
	// A different transaction cannot take the lock.
	pr := h.call(t, PrepareReq{ReqID: 2, TxID: 11, Key: "k", TS: Timestamp{Version: 1, Site: -2}}).(PrepareResp)
	if pr.OK || pr.Reason != "locked" {
		t.Errorf("conflicting prepare = %+v", pr)
	}
	// The same transaction may re-prepare (idempotent).
	if pr := h.call(t, PrepareReq{ReqID: 3, TxID: 10, Key: "k", TS: ts}).(PrepareResp); !pr.OK {
		t.Error("re-prepare by owner refused")
	}
	// After abort the lock is free.
	h.call(t, AbortReq{ReqID: 4, TxID: 10, Key: "k"})
	if pr := h.call(t, PrepareReq{ReqID: 5, TxID: 11, Key: "k", TS: Timestamp{Version: 1, Site: -2}}).(PrepareResp); !pr.OK {
		t.Errorf("prepare after abort refused: %s", pr.Reason)
	}
}

func TestPrepareRejectsStaleTimestamp(t *testing.T) {
	h := newHarness(t)
	h.rep.Store().Apply("k", []byte("v5"), Timestamp{Version: 5, Site: 1})
	pr := h.call(t, PrepareReq{ReqID: 1, TxID: 10, Key: "k", TS: Timestamp{Version: 5, Site: 2}}).(PrepareResp)
	if pr.OK || pr.Reason != "stale" {
		t.Errorf("stale prepare = %+v", pr)
	}
	// A strictly newer timestamp is fine.
	if pr := h.call(t, PrepareReq{ReqID: 2, TxID: 10, Key: "k", TS: Timestamp{Version: 6, Site: 2}}).(PrepareResp); !pr.OK {
		t.Errorf("fresh prepare refused: %s", pr.Reason)
	}
}

func TestLockExpiry(t *testing.T) {
	h := newHarness(t, WithLockTTL(30*time.Millisecond))
	ts := Timestamp{Version: 1, Site: -1}
	if pr := h.call(t, PrepareReq{ReqID: 1, TxID: 10, Key: "k", TS: ts}).(PrepareResp); !pr.OK {
		t.Fatal("prepare refused")
	}
	time.Sleep(60 * time.Millisecond)
	// The expired lock no longer blocks another transaction.
	if pr := h.call(t, PrepareReq{ReqID: 2, TxID: 11, Key: "k", TS: Timestamp{Version: 1, Site: -2}}).(PrepareResp); !pr.OK {
		t.Errorf("prepare after expiry refused: %s", pr.Reason)
	}
}

func TestCrashSilenceAndRecovery(t *testing.T) {
	h := newHarness(t)
	h.rep.Store().Apply("k", []byte("v"), Timestamp{Version: 1, Site: 1})
	h.rep.Crash()
	if !h.rep.Crashed() {
		t.Error("Crashed() = false after Crash")
	}
	h.expectSilence(t, ReadReq{ReqID: 1, Key: "k"})
	h.rep.Recover()
	if h.rep.Crashed() {
		t.Error("Crashed() = true after Recover")
	}
	// Stable storage survived the crash.
	rr := h.call(t, ReadReq{ReqID: 2, Key: "k"}).(ReadResp)
	if !rr.Found || string(rr.Value) != "v" {
		t.Errorf("post-recovery read = %+v", rr)
	}
}

func TestCrashDropsLocks(t *testing.T) {
	h := newHarness(t)
	ts := Timestamp{Version: 1, Site: -1}
	if pr := h.call(t, PrepareReq{ReqID: 1, TxID: 10, Key: "k", TS: ts}).(PrepareResp); !pr.OK {
		t.Fatal("prepare refused")
	}
	h.rep.Crash()
	h.rep.Recover()
	// Volatile lock state is gone: a new transaction can prepare.
	if pr := h.call(t, PrepareReq{ReqID: 2, TxID: 11, Key: "k", TS: Timestamp{Version: 1, Site: -2}}).(PrepareResp); !pr.OK {
		t.Errorf("prepare after crash refused: %s", pr.Reason)
	}
}

func TestPingAndStats(t *testing.T) {
	h := newHarness(t)
	pong := h.call(t, PingReq{ReqID: 9}).(PingResp)
	if pong.Site != 1 || pong.ReqID != 9 {
		t.Errorf("pong = %+v", pong)
	}
	h.call(t, ReadReq{ReqID: 1, Key: "k"})
	h.call(t, VersionReq{ReqID: 2, Key: "k"})
	st := h.rep.Stats()
	if st.Pings != 1 || st.Reads != 1 || st.Versions != 1 || st.Messages != 3 {
		t.Errorf("stats = %+v", st)
	}
	if h.rep.Site() != 1 {
		t.Errorf("Site = %d", h.rep.Site())
	}
}

func TestCommitIsIdempotentAndOrdered(t *testing.T) {
	h := newHarness(t)
	tsNew := Timestamp{Version: 2, Site: -1}
	tsOld := Timestamp{Version: 1, Site: -1}
	h.call(t, CommitReq{ReqID: 1, TxID: 1, Key: "k", Value: []byte("new"), TS: tsNew})
	// Re-delivery of an older commit must not regress the value.
	h.call(t, CommitReq{ReqID: 2, TxID: 2, Key: "k", Value: []byte("old"), TS: tsOld})
	v, ts, _ := h.rep.Store().Get("k")
	if string(v) != "new" || ts != tsNew {
		t.Errorf("store regressed to %q %v", v, ts)
	}
	// Duplicate commit of the same write is harmless.
	h.call(t, CommitReq{ReqID: 3, TxID: 1, Key: "k", Value: []byte("new"), TS: tsNew})
	v, _, _ = h.rep.Store().Get("k")
	if string(v) != "new" {
		t.Errorf("duplicate commit changed value to %q", v)
	}
}
