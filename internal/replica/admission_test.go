package replica

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestPrepareReserve(t *testing.T) {
	cases := []struct{ limit, want int }{
		{1, 0}, // degenerate limit: reads keep the only slot
		{2, 1},
		{3, 1},
		{4, 1},
		{8, 2},
		{64, 16},
	}
	for _, c := range cases {
		if got := prepareReserve(c.limit); got != c.want {
			t.Errorf("prepareReserve(%d) = %d, want %d", c.limit, got, c.want)
		}
	}
}

// TestSaturateShedsGatedNeverPhaseTwo arms the deterministic overload fault
// and checks the shed priority contract: reads and prepares come back as
// typed OverloadedResp with a retry-after hint, while phase-two commits are
// still served — a prepared site must always hear the outcome.
func TestSaturateShedsGatedNeverPhaseTwo(t *testing.T) {
	h := newHarness(t)
	h.rep.Saturate(true)

	read := h.call(t, ReadReq{ReqID: 1, Key: "k"})
	if resp, ok := read.(OverloadedResp); !ok {
		t.Fatalf("saturated read reply = %T, want OverloadedResp", read)
	} else if resp.RetryAfterMillis == 0 {
		t.Error("saturated read shed without a retry-after hint")
	}
	prep := h.call(t, PrepareReq{ReqID: 2, TxID: 9, Key: "k", TS: Timestamp{Version: 1, Site: 1}})
	if _, ok := prep.(OverloadedResp); !ok {
		t.Fatalf("saturated prepare reply = %T, want OverloadedResp", prep)
	}
	commit := h.call(t, CommitReq{ReqID: 3, TxID: 9, Key: "k"})
	if _, ok := commit.(CommitResp); !ok {
		t.Fatalf("saturated commit reply = %T, want CommitResp (commits are never shed)", commit)
	}
	if got := h.rep.Stats().Sheds; got != 2 {
		t.Errorf("Sheds = %d, want 2 (read + prepare, not the commit)", got)
	}

	h.rep.Saturate(false)
	again := h.call(t, ReadReq{ReqID: 4, Key: "k"})
	if _, ok := again.(ReadResp); !ok {
		t.Fatalf("unsaturated read reply = %T, want ReadResp", again)
	}
}

// TestGateDrainsPreparesFirst fills the single slot, queues a read and then
// a prepare, and checks the worker drains the prepare first: phase-one work
// beats read work on a site recovering from pressure.
func TestGateDrainsPreparesFirst(t *testing.T) {
	h := newHarness(t, WithMaxInflight(1))
	g := h.rep.gate

	started := make(chan struct{})
	release := make(chan struct{})
	var mu sync.Mutex
	var order []string
	record := func(name string) func() {
		return func() {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
		}
	}
	g.submit(0, 1, classRead, 0, func() { close(started); <-release })
	<-started
	g.submit(0, 2, classRead, 0, record("read"))
	g.submit(0, 3, classPrepare, 0, record("prepare"))
	close(release)
	g.wg.Wait()

	if len(order) != 2 || order[0] != "prepare" || order[1] != "read" {
		t.Errorf("drain order = %v, want [prepare read]", order)
	}
}

// TestGatePrepareReserveAdmitsUnderReadPressure saturates the read share of
// a limit-4 gate (reserve 1) and checks a prepare still starts immediately
// while a fourth read has to queue.
func TestGatePrepareReserveAdmitsUnderReadPressure(t *testing.T) {
	h := newHarness(t, WithMaxInflight(4))
	g := h.rep.gate

	release := make(chan struct{})
	var started sync.WaitGroup
	for i := uint64(1); i <= 3; i++ {
		started.Add(1)
		g.submit(0, i, classRead, 0, func() { started.Done(); <-release })
	}
	started.Wait()

	g.submit(0, 4, classRead, 0, func() {}) // read share exhausted: queues
	if got := g.depth(); got != 1 {
		t.Errorf("queue depth after fourth read = %d, want 1", got)
	}
	prepareRan := make(chan struct{})
	g.submit(0, 5, classPrepare, 0, func() { close(prepareRan) })
	select {
	case <-prepareRan:
	case <-time.After(2 * time.Second):
		t.Fatal("prepare did not run while the read share was saturated (reserve not honored)")
	}
	close(release)
	g.wg.Wait()
}

// TestGateQueueFullSheds overflows the limit-1 gate's wait queue and checks
// the overflowing request comes back as a typed overload reply.
func TestGateQueueFullSheds(t *testing.T) {
	h := newHarness(t, WithMaxInflight(1))
	g := h.rep.gate
	from := h.client.Addr()

	started := make(chan struct{})
	release := make(chan struct{})
	g.submit(from, 1, classRead, 0, func() { close(started); <-release })
	<-started
	for i := uint64(2); i <= 3; i++ { // queueCap = 2×limit = 2
		g.submit(from, i, classRead, 0, func() {})
	}
	g.submit(from, 4, classRead, 0, func() { t.Error("over-queue-cap request was served") })

	select {
	case msg := <-h.client.Recv():
		resp, ok := msg.Payload.(OverloadedResp)
		if !ok || resp.ReqID != 4 {
			t.Fatalf("overflow reply = %+v, want OverloadedResp{ReqID: 4}", msg.Payload)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no shed reply for the over-queue-cap request")
	}
	if got := h.rep.Stats().Sheds; got != 1 {
		t.Errorf("Sheds = %d, want 1", got)
	}
	close(release)
	g.wg.Wait()
}

// TestGateShedsExpiredQueuedWork queues a request carrying a 1ms deadline
// budget behind a slow slot and checks it is shed as expired on dequeue —
// the caller has already given up, so serving it would be wasted work.
func TestGateShedsExpiredQueuedWork(t *testing.T) {
	h := newHarness(t, WithMaxInflight(1))
	g := h.rep.gate
	from := h.client.Addr()

	started := make(chan struct{})
	release := make(chan struct{})
	g.submit(from, 1, classRead, 0, func() { close(started); <-release })
	<-started
	g.submit(from, 2, classRead, 1, func() { t.Error("expired request was served") })
	time.Sleep(10 * time.Millisecond) // let the 1ms budget lapse in the queue
	close(release)
	g.wg.Wait()

	select {
	case msg := <-h.client.Recv():
		if resp, ok := msg.Payload.(OverloadedResp); !ok || resp.ReqID != 2 {
			t.Fatalf("expired reply = %+v, want OverloadedResp{ReqID: 2}", msg.Payload)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no shed reply for the expired queued request")
	}
}

// TestDrainQuiescesAndGoesDown drains an idle replica: Drain returns, the
// lifecycle lands on HealthDown, and the site then behaves exactly like a
// crashed one — silent — so the existing recovery paths bring it back.
func TestDrainQuiescesAndGoesDown(t *testing.T) {
	h := newHarness(t)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := h.rep.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if !h.rep.Draining() {
		t.Error("Draining() = false after Drain")
	}
	if got := h.rep.Health(); got != HealthDown {
		t.Errorf("health after drain = %v, want HealthDown", got)
	}
	h.expectSilence(t, ReadReq{ReqID: 1, Key: "k"})

	h.rep.Recover()
	read := h.call(t, ReadReq{ReqID: 2, Key: "k"})
	if _, ok := read.(ReadResp); !ok {
		t.Fatalf("post-recover read reply = %T, want ReadResp", read)
	}
}

// TestDrainWaitsForInflight holds a gated slot while a drain starts and
// checks Drain only returns after the in-flight request finishes.
func TestDrainWaitsForInflight(t *testing.T) {
	h := newHarness(t, WithMaxInflight(1))
	g := h.rep.gate

	started := make(chan struct{})
	release := make(chan struct{})
	g.submit(0, 1, classRead, 0, func() { close(started); <-release })
	<-started

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		drained <- h.rep.Drain(ctx)
	}()
	select {
	case err := <-drained:
		t.Fatalf("Drain returned %v with a request still in flight", err)
	case <-time.After(20 * time.Millisecond):
	}
	// While draining (not yet down), new gated work sheds with the typed
	// reply so clients move on immediately instead of timing out.
	midDrain := h.call(t, ReadReq{ReqID: 7, Key: "k"})
	if _, ok := midDrain.(OverloadedResp); !ok {
		t.Fatalf("mid-drain read reply = %T, want OverloadedResp", midDrain)
	}
	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("Drain after quiesce: %v", err)
	}
	if got := h.rep.Health(); got != HealthDown {
		t.Errorf("health after drain = %v, want HealthDown", got)
	}
}
