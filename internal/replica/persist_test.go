package replica

import (
	"bytes"
	"strings"
	"testing"
)

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	s := NewStore()
	s.Apply("a", []byte("v1"), Timestamp{Version: 1, Site: 1})
	s.Apply("b", []byte("v2"), Timestamp{Version: 2, Site: 3})

	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	fresh := NewStore()
	if err := fresh.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	if fresh.Len() != 2 {
		t.Fatalf("restored %d keys, want 2", fresh.Len())
	}
	v, ts, ok := fresh.Get("b")
	if !ok || string(v) != "v2" || ts.Version != 2 || ts.Site != 3 {
		t.Errorf("restored b = %q %v %v", v, ts, ok)
	}
}

func TestRestoreNeverRegresses(t *testing.T) {
	old := NewStore()
	old.Apply("k", []byte("old"), Timestamp{Version: 1, Site: 1})
	var snap bytes.Buffer
	if err := old.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}

	cur := NewStore()
	cur.Apply("k", []byte("new"), Timestamp{Version: 5, Site: 1})
	if err := cur.Restore(&snap); err != nil {
		t.Fatal(err)
	}
	v, ts, _ := cur.Get("k")
	if string(v) != "new" || ts.Version != 5 {
		t.Errorf("old snapshot regressed store to %q %v", v, ts)
	}
}

func TestRestoreMergesNewerEntries(t *testing.T) {
	newer := NewStore()
	newer.Apply("k", []byte("fresh"), Timestamp{Version: 9, Site: 1})
	var snap bytes.Buffer
	if err := newer.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}

	cur := NewStore()
	cur.Apply("k", []byte("stale"), Timestamp{Version: 2, Site: 1})
	if err := cur.Restore(&snap); err != nil {
		t.Fatal(err)
	}
	v, _, _ := cur.Get("k")
	if string(v) != "fresh" {
		t.Errorf("restore did not merge newer entry: %q", v)
	}
}

func TestRestoreGarbage(t *testing.T) {
	s := NewStore()
	if err := s.Restore(strings.NewReader("not a gob stream")); err == nil {
		t.Error("garbage restore succeeded")
	}
}

func TestSnapshotEmptyStore(t *testing.T) {
	var buf bytes.Buffer
	if err := NewStore().Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	fresh := NewStore()
	if err := fresh.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	if fresh.Len() != 0 {
		t.Errorf("empty snapshot produced %d keys", fresh.Len())
	}
}

func TestSnapshotIsolatedFromLaterWrites(t *testing.T) {
	s := NewStore()
	s.Apply("k", []byte("v1"), Timestamp{Version: 1, Site: 1})
	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	s.Apply("k", []byte("v2"), Timestamp{Version: 2, Site: 1})

	fresh := NewStore()
	if err := fresh.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	v, ts, _ := fresh.Get("k")
	if string(v) != "v1" || ts.Version != 1 {
		t.Errorf("snapshot captured later write: %q %v", v, ts)
	}
}
