package replica

// Health is a replica's position in the recovery lifecycle. A replica is
// born Live, fail-stops to Down on Crash, and — when recovered through the
// anti-entropy path — passes through CatchingUp before rejoining as Live.
//
// A CatchingUp replica participates in two-phase commit immediately (write
// quorums need every site of its physical level, so withholding prepare
// votes would block writes) but refuses read and version-discovery probes:
// its store may still miss versions that committed while it was down, and
// serving them would hand clients stale data the quorum intersection no
// longer protects against.
type Health int32

// Health states. HealthLive is the zero value so a freshly constructed
// replica is live without an explicit transition.
const (
	// HealthLive: full peer, serves every request type.
	HealthLive Health = iota
	// HealthDown: fail-stopped, ignores all traffic.
	HealthDown
	// HealthCatchingUp: recovering; serves 2PC (prepare/commit/abort),
	// ping and sync traffic, refuses read/version probes.
	HealthCatchingUp
)

// String renders the lifecycle state name.
func (h Health) String() string {
	switch h {
	case HealthLive:
		return "live"
	case HealthDown:
		return "down"
	case HealthCatchingUp:
		return "catching-up"
	default:
		return "unknown"
	}
}

// Health returns the replica's current lifecycle state.
func (r *Replica) Health() Health {
	return Health(r.health.Load())
}
