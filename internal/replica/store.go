package replica

import (
	"sort"
	"sync"
)

// entry is one stored version of a key.
type entry struct {
	value []byte
	ts    Timestamp
}

// Store is the replica's stable storage: a timestamped key-value map.
// Writes only apply if their timestamp is newer than the stored one, making
// commit application idempotent and reordering-safe.
type Store struct {
	mu      sync.Mutex
	data    map[string]entry
	journal *WAL
}

// NewStore creates an empty store.
func NewStore() *Store {
	return &Store{data: make(map[string]entry)}
}

// Get returns the stored value and timestamp for key.
func (s *Store) Get(key string) (value []byte, ts Timestamp, found bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.data[key]
	if !ok {
		return nil, Timestamp{}, false
	}
	out := make([]byte, len(e.value))
	copy(out, e.value)
	return out, e.ts, true
}

// Version returns only the stored timestamp for key.
func (s *Store) Version(key string) (ts Timestamp, found bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.data[key]
	return e.ts, ok
}

// Apply installs value under key if ts is newer than what is stored. It
// reports whether the write took effect. When a journal is attached,
// effective writes are appended to it (best-effort: a journal failure does
// not roll back the in-memory apply).
func (s *Store) Apply(key string, value []byte, ts Timestamp) bool {
	s.mu.Lock()
	if e, ok := s.data[key]; ok && !ts.After(e.ts) {
		s.mu.Unlock()
		return false
	}
	v := make([]byte, len(value))
	copy(v, value)
	s.data[key] = entry{value: v, ts: ts}
	journal := s.journal
	s.mu.Unlock()
	if journal != nil {
		_ = journal.Append(key, v, ts)
	}
	return true
}

// DigestPage returns up to limit key/timestamp pairs in ascending key
// order, starting strictly after the given key; more reports whether
// further keys remain. It is the server side of anti-entropy catch-up:
// stable pagination lets a recovering peer resume mid-digest after its own
// repeated crashes. The full key set is sorted per page — fine at the
// simulated scale; a production store would keep an ordered index.
func (s *Store) DigestPage(after string, limit int) (entries []DigestEntry, more bool) {
	if limit <= 0 {
		limit = 64
	}
	s.mu.Lock()
	keys := make([]string, 0, len(s.data))
	for k := range s.data {
		if k > after {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	if len(keys) > limit {
		keys, more = keys[:limit], true
	}
	entries = make([]DigestEntry, len(keys))
	for i, k := range keys {
		entries[i] = DigestEntry{Key: k, TS: s.data[k].ts}
	}
	s.mu.Unlock()
	return entries, more
}

// Len returns the number of keys stored.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.data)
}

// Keys returns all stored keys (unordered).
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.data))
	for k := range s.data {
		out = append(out, k)
	}
	return out
}
