package replica

import (
	"fmt"
	"testing"
	"time"

	"arbor/internal/transport"
)

// TestCatchingUpServes: the health lifecycle's serving matrix. A
// catching-up replica keeps participating in 2PC (so in-flight writes can
// still commit on its level) but refuses read and version probes (its
// store may be arbitrarily stale).
func TestCatchingUpServes(t *testing.T) {
	tests := []struct {
		name  string
		req   any
		check func(t *testing.T, resp any)
	}{
		{
			name: "read refused",
			req:  ReadReq{ReqID: 1, Key: "k"},
			check: func(t *testing.T, resp any) {
				rr, ok := resp.(ReadResp)
				if !ok || !rr.Refused {
					t.Fatalf("resp = %#v, want refused ReadResp", resp)
				}
			},
		},
		{
			name: "version refused",
			req:  VersionReq{ReqID: 2, Key: "k", ForWrite: true},
			check: func(t *testing.T, resp any) {
				vr, ok := resp.(VersionResp)
				if !ok || !vr.Refused {
					t.Fatalf("resp = %#v, want refused VersionResp", resp)
				}
			},
		},
		{
			name: "prepare accepted",
			req:  PrepareReq{ReqID: 3, TxID: 7, Key: "k", TS: Timestamp{Version: 1, Site: -1}},
			check: func(t *testing.T, resp any) {
				pr, ok := resp.(PrepareResp)
				if !ok || !pr.OK {
					t.Fatalf("resp = %#v, want OK PrepareResp", resp)
				}
			},
		},
		{
			name: "commit accepted",
			req:  CommitReq{ReqID: 4, TxID: 7, Key: "k", Value: []byte("v"), TS: Timestamp{Version: 1, Site: -1}},
			check: func(t *testing.T, resp any) {
				if _, ok := resp.(CommitResp); !ok {
					t.Fatalf("resp = %#v, want CommitResp", resp)
				}
			},
		},
		{
			name: "ping accepted",
			req:  PingReq{ReqID: 5},
			check: func(t *testing.T, resp any) {
				if _, ok := resp.(PingResp); !ok {
					t.Fatalf("resp = %#v, want PingResp", resp)
				}
			},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			h := newHarness(t)
			h.rep.Crash()
			// A plan against an unregistered address pins the replica in
			// the catching-up state for the duration of the test.
			h.rep.RecoverCatchingUp(SyncPlan{
				Peers:  [][]transport.Addr{{transport.Addr(9999)}},
				Config: SyncConfig{CallTimeout: 10 * time.Millisecond},
			})
			if h.rep.Health() != HealthCatchingUp {
				t.Fatalf("health = %v, want catching-up", h.rep.Health())
			}
			tt.check(t, h.call(t, tt.req))
		})
	}
}

func TestHealthString(t *testing.T) {
	for h, want := range map[Health]string{
		HealthLive:       "live",
		HealthDown:       "down",
		HealthCatchingUp: "catching-up",
		Health(42):       "unknown",
	} {
		if got := h.String(); got != want {
			t.Errorf("Health(%d).String() = %q, want %q", h, got, want)
		}
	}
}

// TestCatchingUpRefusalsCounted: refusals show up in the replica's stats.
func TestCatchingUpRefusalsCounted(t *testing.T) {
	h := newHarness(t)
	h.rep.Crash()
	h.rep.RecoverCatchingUp(SyncPlan{
		Peers:  [][]transport.Addr{{transport.Addr(9999)}},
		Config: SyncConfig{CallTimeout: 10 * time.Millisecond},
	})
	h.call(t, ReadReq{ReqID: 1, Key: "k"})
	h.call(t, VersionReq{ReqID: 2, Key: "k"})
	if got := h.rep.Stats().Refusals; got != 2 {
		t.Errorf("Refusals = %d, want 2", got)
	}
}

// syncPair wires a source replica (site 1) and a recovering replica
// (site 2) on one network.
type syncPair struct {
	net    *transport.Network
	source *Replica
	rec    *Replica
}

func newSyncPair(t *testing.T) *syncPair {
	t.Helper()
	n := transport.NewNetwork()
	ep1, err := n.Register(1)
	if err != nil {
		t.Fatal(err)
	}
	ep2, err := n.Register(2)
	if err != nil {
		t.Fatal(err)
	}
	p := &syncPair{net: n, source: New(1, ep1), rec: New(2, ep2)}
	p.source.Start()
	p.rec.Start()
	t.Cleanup(func() {
		p.source.Stop()
		p.rec.Stop()
		n.Close()
	})
	return p
}

func (p *syncPair) await(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		prog := p.rec.SyncProgress()
		if prog.Health != HealthCatchingUp && !prog.Active {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("sync did not settle: %+v", prog)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestSyncPullsNewerVersionsOnly: a catch-up pass fetches exactly the keys
// whose source timestamp beats the local one and promotes the replica to
// live when done.
func TestSyncPullsNewerVersionsOnly(t *testing.T) {
	p := newSyncPair(t)
	for i := 0; i < 10; i++ {
		key := fmt.Sprintf("k%02d", i)
		p.source.Store().Apply(key, []byte("new"), Timestamp{Version: 2, Site: -1})
	}
	// The recovering replica already has half the keys current, and one
	// key the source has never seen.
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("k%02d", i)
		p.rec.Store().Apply(key, []byte("new"), Timestamp{Version: 2, Site: -1})
	}
	p.rec.Store().Apply("local-only", []byte("mine"), Timestamp{Version: 1, Site: -2})

	p.rec.Crash()
	p.rec.RecoverCatchingUp(SyncPlan{
		Peers:  [][]transport.Addr{{1}},
		Config: SyncConfig{BatchSize: 3, CallTimeout: 100 * time.Millisecond},
	})
	p.await(t)

	if h := p.rec.Health(); h != HealthLive {
		t.Fatalf("health = %v, want live", h)
	}
	prog := p.rec.SyncProgress()
	if prog.KeysPulled != 5 {
		t.Errorf("KeysPulled = %d, want 5 (only the stale half)", prog.KeysPulled)
	}
	if prog.Completions != 1 {
		t.Errorf("Completions = %d, want 1", prog.Completions)
	}
	for i := 0; i < 10; i++ {
		key := fmt.Sprintf("k%02d", i)
		if _, ts, found := p.rec.Store().Get(key); !found || ts.Version != 2 {
			t.Errorf("%s: found=%v ts=%v, want version 2", key, found, ts)
		}
	}
	if _, _, found := p.rec.Store().Get("local-only"); !found {
		t.Error("sync dropped a key the source never had")
	}
}

// TestSyncResumesAfterCrash: a replica that dies mid-catch-up keeps its
// per-level cursors, resumes from them on the next recovery, and does not
// re-pull the keys it already applied.
func TestSyncResumesAfterCrash(t *testing.T) {
	p := newSyncPair(t)
	const total = 9
	for i := 0; i < total; i++ {
		key := fmt.Sprintf("k%02d", i)
		p.source.Store().Apply(key, []byte("v"), Timestamp{Version: 1, Site: -1})
	}
	p.rec.Crash()

	// Block the syncer after its first applied page so the crash lands at
	// a deterministic point (cursor set, 3 of 9 keys pulled).
	firstPage := make(chan string, 1)
	proceed := make(chan struct{})
	pages := 0
	p.rec.setSyncHook(func(level int, cursor string) {
		pages++
		if pages == 1 {
			firstPage <- cursor
			select {
			case <-proceed:
			case <-time.After(5 * time.Second):
			}
		}
	})
	plan := SyncPlan{
		Peers:  [][]transport.Addr{{1}},
		Config: SyncConfig{BatchSize: 3, CallTimeout: 100 * time.Millisecond, RetryBase: 5 * time.Millisecond},
	}
	p.rec.RecoverCatchingUp(plan)
	var cursor string
	select {
	case cursor = <-firstPage:
	case <-time.After(5 * time.Second):
		t.Fatal("first page never completed")
	}
	if cursor != "k02" {
		t.Fatalf("cursor after first page = %q, want k02", cursor)
	}
	// Fail the source before releasing the syncer: page 2 can only time
	// out, so the crash below interrupts the pass at exactly one applied
	// page no matter how the goroutines interleave.
	p.source.Crash()
	close(proceed)
	p.rec.Crash() // interrupts the pass; cursors survive
	p.source.Recover()

	if got := p.rec.SyncProgress().KeysPulled; got != 3 {
		t.Fatalf("KeysPulled after interrupted pass = %d, want 3", got)
	}

	p.rec.RecoverCatchingUp(plan)
	p.await(t)

	if h := p.rec.Health(); h != HealthLive {
		t.Fatalf("health = %v, want live", h)
	}
	for i := 0; i < total; i++ {
		key := fmt.Sprintf("k%02d", i)
		if _, _, found := p.rec.Store().Get(key); !found {
			t.Errorf("%s missing after resumed sync", key)
		}
	}
	// The resume starts at the saved cursor and the follow-up full pass
	// re-digests everything but fetches nothing already current, so every
	// key is pulled exactly once.
	if got := p.rec.SyncProgress().KeysPulled; got != total {
		t.Errorf("total KeysPulled = %d, want %d (no re-pulls on resume)", got, total)
	}
}

// TestSyncOnLiveReplicaStaysLive: StartSync on a live replica reconciles
// without ever leaving the live state.
func TestSyncOnLiveReplicaStaysLive(t *testing.T) {
	p := newSyncPair(t)
	p.source.Store().Apply("k", []byte("v"), Timestamp{Version: 3, Site: -1})
	if !p.rec.StartSync(SyncPlan{Peers: [][]transport.Addr{{1}}, Config: SyncConfig{CallTimeout: 100 * time.Millisecond}}) {
		t.Fatal("StartSync refused with no syncer running")
	}
	p.await(t)
	if h := p.rec.Health(); h != HealthLive {
		t.Fatalf("health = %v, want live", h)
	}
	if _, ts, found := p.rec.Store().Get("k"); !found || ts.Version != 3 {
		t.Errorf("k not reconciled: found=%v ts=%v", found, ts)
	}
}
