package replica

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"os"
	"path/filepath"
	"testing"
)

// writeLegacyWAL writes a journal in the pre-binary format: each record a
// [4-byte length][self-contained gob of walRecord] frame.
func writeLegacyWAL(t *testing.T, path string, recs []walRecord) {
	t.Helper()
	var out bytes.Buffer
	for _, rec := range recs {
		var body bytes.Buffer
		if err := gob.NewEncoder(&body).Encode(rec); err != nil {
			t.Fatal(err)
		}
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(body.Len()))
		out.Write(hdr[:])
		out.Write(body.Bytes())
	}
	if err := os.WriteFile(path, out.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestReplayLegacyGobWAL: journals written by earlier releases (gob record
// bodies) still replay, including journals that mix legacy and binary
// records — the shape a WAL gets when an upgraded process appends to an old
// file.
func TestReplayLegacyGobWAL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "legacy.wal")
	writeLegacyWAL(t, path, []walRecord{
		{Key: "a", Value: []byte("1"), TS: Timestamp{Version: 1, Site: 1}},
		{Key: "b", Value: []byte("2"), TS: Timestamp{Version: 2, Site: -1}},
	})

	// An upgraded process appends binary records to the same journal.
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append("a", []byte("3"), Timestamp{Version: 3, Site: 2}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	s := NewStore()
	applied, err := ReplayWAL(path, s)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 3 {
		t.Fatalf("applied %d records, want 3", applied)
	}
	if v, ts, ok := s.Get("a"); !ok || string(v) != "3" || ts.Version != 3 {
		t.Errorf("a = %q %v %v", v, ts, ok)
	}
	if v, _, ok := s.Get("b"); !ok || string(v) != "2" {
		t.Errorf("b = %q %v", v, ok)
	}
}

// TestRestoreLegacyGobSnapshot: snapshots written by earlier releases (one
// streaming gob of the entry slice, no header byte) restore through the
// first-byte fallback.
func TestRestoreLegacyGobSnapshot(t *testing.T) {
	entries := []snapshotEntry{
		{Key: "x", Value: []byte("vx"), TS: Timestamp{Version: 5, Site: 3}},
		{Key: "y", Value: []byte("vy"), TS: Timestamp{Version: 1, Site: -2}},
	}
	var legacy bytes.Buffer
	if err := gob.NewEncoder(&legacy).Encode(entries); err != nil {
		t.Fatal(err)
	}

	s := NewStore()
	if err := s.Restore(&legacy); err != nil {
		t.Fatal(err)
	}
	if v, ts, ok := s.Get("x"); !ok || string(v) != "vx" || ts.Version != 5 {
		t.Errorf("x = %q %v %v", v, ts, ok)
	}

	// And a snapshot the upgraded store writes restores into another store
	// byte-identically.
	var modern bytes.Buffer
	if err := s.Snapshot(&modern); err != nil {
		t.Fatal(err)
	}
	s2 := NewStore()
	if err := s2.Restore(&modern); err != nil {
		t.Fatal(err)
	}
	if v, _, ok := s2.Get("y"); !ok || string(v) != "vy" {
		t.Errorf("y after modern round trip = %q %v", v, ok)
	}
}
