package replica

import (
	"errors"
	"math/rand"
	"time"

	"arbor/internal/transport"
)

// Anti-entropy catch-up. A replica that was down missed writes; under the
// paper's quorum shapes every one of those writes committed on ALL sites of
// some physical level that does not contain this replica (its own level
// could not assemble a write quorum while it was down). So pulling from one
// live site per OTHER physical level provably covers every missed write,
// and any single member of a level is as good a source as any other.
//
// The syncer pages through each source's key/timestamp digest in key order,
// fetches exactly the keys whose source timestamp beats the local one, and
// applies them through the normal store path (so pulled values hit the
// write-ahead journal and survive further crashes). Per-level cursors are
// kept across crashes: a replica that dies mid-catch-up resumes where it
// stopped, finishes the interrupted pass, and then runs one fresh full pass
// — keys already paged past may have taken newer writes during the second
// outage, so cursor-resume alone would not converge.

// SyncConfig bounds one anti-entropy catch-up.
type SyncConfig struct {
	// BatchSize caps keys per digest page and per fetch (default 64).
	BatchSize int
	// CallTimeout is the per-RPC reply deadline (default 250ms).
	CallTimeout time.Duration
	// RetryBase is the backoff after a round in which every candidate
	// source failed (default CallTimeout); it doubles per barren round,
	// jittered, up to RetryMax (default 16×RetryBase).
	RetryBase time.Duration
	RetryMax  time.Duration
	// Seed drives the backoff jitter.
	Seed int64
}

func (c SyncConfig) withDefaults() SyncConfig {
	if c.BatchSize <= 0 {
		c.BatchSize = 64
	}
	if c.CallTimeout <= 0 {
		c.CallTimeout = 250 * time.Millisecond
	}
	if c.RetryBase <= 0 {
		c.RetryBase = c.CallTimeout
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 16 * c.RetryBase
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// SyncPlan tells a recovering replica where to pull state from: for each
// physical level other than its own, that level's sites in preference
// order. The cluster layer builds plans from the live protocol tree.
type SyncPlan struct {
	Peers  [][]transport.Addr
	Config SyncConfig
}

// SyncProgress is a snapshot of the syncer's counters.
type SyncProgress struct {
	Health      Health
	Active      bool
	KeysPulled  uint64
	Batches     uint64
	Retries     uint64
	Completions uint64
}

var (
	errSyncAborted  = errors.New("replica: sync aborted")
	errSyncTimeout  = errors.New("replica: sync call timed out")
	errSyncBadReply = errors.New("replica: unexpected sync reply type")
)

// RecoverCatchingUp brings a crashed replica back through the anti-entropy
// path: it enters the catching-up state — serving 2PC participation but
// refusing read/version probes — and promotes itself to live only once a
// full catch-up pass converges. With an empty plan (single-level tree:
// there is nowhere state could have gone without this site) it degenerates
// to instant Recover. On an already-live replica it starts a background
// reconciliation pass without leaving the live state.
func (r *Replica) RecoverCatchingUp(plan SyncPlan) {
	if len(plan.Peers) == 0 {
		r.Recover()
		return
	}
	r.clearOverload()
	r.health.CompareAndSwap(int32(HealthDown), int32(HealthCatchingUp))
	r.StartSync(plan)
}

// StartSync launches an anti-entropy pass in the background; it reports
// false if one is already running. Completion promotes a catching-up
// replica to live; a live replica stays live throughout.
func (r *Replica) StartSync(plan SyncPlan) bool {
	r.syncMu.Lock()
	if r.syncDone != nil {
		select {
		case <-r.syncDone:
			// previous syncer already exited; start a new one
		default:
			r.syncMu.Unlock()
			return false
		}
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	r.syncStop, r.syncDone = stop, done
	r.syncMu.Unlock()
	r.syncStats.active.Store(true)
	go r.runSync(plan, stop, done)
	return true
}

// SyncProgress returns the syncer's lifecycle state and counters.
func (r *Replica) SyncProgress() SyncProgress {
	return SyncProgress{
		Health:      r.Health(),
		Active:      r.syncStats.active.Load(),
		KeysPulled:  r.syncStats.keysPulled.Load(),
		Batches:     r.syncStats.batches.Load(),
		Retries:     r.syncStats.retries.Load(),
		Completions: r.syncStats.completions.Load(),
	}
}

// abortSync stops a running syncer (if any) and waits for it to exit.
// Cursors are left in place so the next recovery resumes.
func (r *Replica) abortSync() {
	r.syncMu.Lock()
	stop, done := r.syncStop, r.syncDone
	r.syncStop, r.syncDone = nil, nil
	r.syncMu.Unlock()
	if stop != nil {
		select {
		case <-stop:
		default:
			close(stop)
		}
	}
	if done != nil {
		<-done
	}
}

// runSync is the syncer goroutine: one (possibly resumed) pass over every
// source level, plus a fresh full pass if the first was a resume.
func (r *Replica) runSync(plan SyncPlan, stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	defer r.syncStats.active.Store(false)
	cfg := plan.Config.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	passes := 1
	if r.hasCursors() {
		passes = 2
	}
	for p := 0; p < passes; p++ {
		if p > 0 {
			r.resetCursors()
		}
		for li, peers := range plan.Peers {
			if err := r.syncLevel(li, peers, cfg, rng, stop); err != nil {
				return // aborted; cursors persist for the next resume
			}
		}
	}
	r.resetCursors()
	r.syncStats.completions.Add(1)
	if r.instr != nil {
		r.instr.syncCompletions.Inc()
	}
	r.health.CompareAndSwap(int32(HealthCatchingUp), int32(HealthLive))
}

// syncLevel pulls digest pages from one source level until its digest is
// exhausted, backing off (jittered, doubling) whenever every candidate
// source fails in a round.
func (r *Replica) syncLevel(li int, peers []transport.Addr, cfg SyncConfig, rng *rand.Rand, stop <-chan struct{}) error {
	backoff := cfg.RetryBase
	for {
		select {
		case <-stop:
			return errSyncAborted
		default:
		}
		done, err := r.syncPage(li, peers, cfg, stop)
		if errors.Is(err, errSyncAborted) {
			return err
		}
		if err != nil {
			r.syncStats.retries.Add(1)
			if r.instr != nil {
				r.instr.syncRetries.Inc()
			}
			d := backoff/2 + time.Duration(rng.Int63n(int64(backoff)))
			if !sleepInterruptible(d, stop) {
				return errSyncAborted
			}
			if backoff *= 2; backoff > cfg.RetryMax {
				backoff = cfg.RetryMax
			}
			continue
		}
		backoff = cfg.RetryBase
		if done {
			r.clearCursor(li)
			return nil
		}
	}
}

// syncPage tries one digest+fetch round at the level's cursor against each
// candidate source in turn; done reports the level's digest is exhausted.
func (r *Replica) syncPage(li int, peers []transport.Addr, cfg SyncConfig, stop <-chan struct{}) (done bool, err error) {
	cursor := r.cursor(li)
	err = errSyncTimeout // reported when peers is empty
	for _, peer := range peers {
		var pageDone bool
		pageDone, err = r.syncPageFrom(li, peer, cursor, cfg, stop)
		if err == nil || errors.Is(err, errSyncAborted) {
			return pageDone, err
		}
	}
	return false, err
}

// syncPageFrom pulls one page from a single source: digest the keys after
// cursor, fetch the ones whose source timestamp beats ours, apply them.
// The fetch goes to the same peer that served the digest so the fetched
// timestamps can only be newer than the digested ones.
func (r *Replica) syncPageFrom(li int, peer transport.Addr, cursor string, cfg SyncConfig, stop <-chan struct{}) (bool, error) {
	resp, err := r.syncCall(peer, cfg.CallTimeout, stop, func(reqID uint64) any {
		return SyncDigestReq{ReqID: reqID, StartAfter: cursor, Limit: cfg.BatchSize}
	})
	if err != nil {
		return false, err
	}
	dig, ok := resp.(SyncDigestResp)
	if !ok {
		return false, errSyncBadReply
	}
	need := make([]string, 0, len(dig.Entries))
	for _, e := range dig.Entries {
		local, found := r.store.Version(e.Key)
		if !found || e.TS.After(local) {
			need = append(need, e.Key)
		}
	}
	if len(need) > 0 {
		resp, err := r.syncCall(peer, cfg.CallTimeout, stop, func(reqID uint64) any {
			return SyncFetchReq{ReqID: reqID, Keys: need}
		})
		if err != nil {
			return false, err
		}
		fetch, ok := resp.(SyncFetchResp)
		if !ok {
			return false, errSyncBadReply
		}
		for _, it := range fetch.Items {
			if !it.Found {
				continue
			}
			if r.store.Apply(it.Key, it.Value, it.TS) {
				r.syncStats.keysPulled.Add(1)
				if r.instr != nil {
					r.instr.syncKeysPulled.Inc()
				}
			}
		}
	}
	r.syncStats.batches.Add(1)
	if r.instr != nil {
		r.instr.syncBatches.Inc()
	}
	if n := len(dig.Entries); n > 0 {
		r.setCursor(li, dig.Entries[n-1].Key)
	}
	r.notifySyncHook(li)
	return !dig.More, nil
}

// syncCall sends one sync request and waits for the event loop to route the
// matching reply back (the syncer shares the replica's endpoint, so replies
// arrive as ordinary inbound messages keyed by ReqID).
func (r *Replica) syncCall(to transport.Addr, timeout time.Duration, stop <-chan struct{}, build func(reqID uint64) any) (any, error) {
	id := r.syncReqID.Add(1)
	ch := make(chan any, 1)
	r.syncMu.Lock()
	if r.syncPending == nil {
		r.syncPending = make(map[uint64]chan any)
	}
	r.syncPending[id] = ch
	r.syncMu.Unlock()
	defer func() {
		r.syncMu.Lock()
		delete(r.syncPending, id)
		r.syncMu.Unlock()
	}()
	if err := r.ep.Send(to, build(id)); err != nil {
		return nil, err
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case resp := <-ch:
		return resp, nil
	case <-timer.C:
		return nil, errSyncTimeout
	case <-stop:
		return nil, errSyncAborted
	}
}

// deliverSyncReply routes a sync response from the event loop to the
// in-flight call that issued it.
func (r *Replica) deliverSyncReply(reqID uint64, payload any) {
	r.syncMu.Lock()
	ch := r.syncPending[reqID]
	r.syncMu.Unlock()
	if ch != nil {
		select {
		case ch <- payload:
		default:
		}
	}
}

func (r *Replica) cursor(li int) string {
	r.syncMu.Lock()
	defer r.syncMu.Unlock()
	return r.syncCursors[li]
}

func (r *Replica) setCursor(li int, key string) {
	r.syncMu.Lock()
	defer r.syncMu.Unlock()
	if r.syncCursors == nil {
		r.syncCursors = make(map[int]string)
	}
	r.syncCursors[li] = key
}

func (r *Replica) clearCursor(li int) {
	r.syncMu.Lock()
	defer r.syncMu.Unlock()
	delete(r.syncCursors, li)
}

func (r *Replica) hasCursors() bool {
	r.syncMu.Lock()
	defer r.syncMu.Unlock()
	return len(r.syncCursors) > 0
}

func (r *Replica) resetCursors() {
	r.syncMu.Lock()
	defer r.syncMu.Unlock()
	r.syncCursors = nil
}

// setSyncHook installs a test-only callback invoked after every applied
// page with the level index and its new cursor.
func (r *Replica) setSyncHook(fn func(level int, cursor string)) {
	r.syncMu.Lock()
	defer r.syncMu.Unlock()
	r.syncHook = fn
}

func (r *Replica) notifySyncHook(li int) {
	r.syncMu.Lock()
	fn, cur := r.syncHook, r.syncCursors[li]
	r.syncMu.Unlock()
	if fn != nil {
		fn(li, cur)
	}
}

// sleepInterruptible waits d unless stop closes first; it reports whether
// the full wait elapsed.
func sleepInterruptible(d time.Duration, stop <-chan struct{}) bool {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-stop:
		return false
	}
}
