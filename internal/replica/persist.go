package replica

import (
	"bufio"
	"encoding/binary"
	//lint:ignore wireclosed legacy snapshot fallback: pre-codec snapshots on disk are gob; decode-only, never written
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"arbor/internal/wire"
)

// snapshotEntry is the legacy (gob) serialized form of one stored key,
// kept only so snapshots written by earlier releases restore through the
// fallback path.
type snapshotEntry struct {
	Key   string
	Value []byte
	TS    Timestamp
}

// Snapshot serializes the store's full contents: a two-byte header
// followed by one length-prefixed, self-contained binary record per key
// (the same record format the WAL journals). It is the replica's
// stable-storage checkpoint: a crashed process restarted from a snapshot
// plus re-delivered commits converges, because Apply is idempotent and
// timestamp-ordered. Self-contained records keep the format free of the
// WAL bug class fixed in PR 4 — no serializer state spans entries, so a
// snapshot is decodable from any record boundary.
func (s *Store) Snapshot(w io.Writer) error {
	s.mu.Lock()
	entries := make([]wire.Record, 0, len(s.data))
	for k, e := range s.data {
		v := make([]byte, len(e.value))
		copy(v, e.value)
		entries = append(entries, wire.Record{Key: k, Value: v, TS: e.ts})
	}
	s.mu.Unlock()

	bw := bufio.NewWriter(w)
	if _, err := bw.Write(wire.SnapshotHeader()); err != nil {
		return fmt.Errorf("replica: snapshot: %w", err)
	}
	var buf []byte
	for _, rec := range entries {
		buf = wire.AppendFramedRecord(buf[:0], rec)
		if _, err := bw.Write(buf); err != nil {
			return fmt.Errorf("replica: snapshot: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("replica: snapshot: %w", err)
	}
	return nil
}

// Restore merges a snapshot into the store. Entries older than what the
// store already holds are ignored (timestamp-ordered Apply), so restoring
// an old snapshot never regresses state. Legacy streaming-gob snapshots
// are detected by their first byte (a binary snapshot starts with a magic
// byte no gob stream can begin with) and restored through the fallback.
func (s *Store) Restore(r io.Reader) error {
	br := bufio.NewReader(r)
	first, err := br.Peek(1)
	if err != nil {
		return fmt.Errorf("replica: restore: %w", err)
	}
	if first[0] != wire.SnapshotMagic {
		return s.restoreGob(br)
	}
	hdr := make([]byte, 2)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return fmt.Errorf("replica: restore: %w", err)
	}
	if err := wire.CheckSnapshotHeader(hdr); err != nil {
		return fmt.Errorf("replica: restore: %w", err)
	}
	var lenb [4]byte
	for {
		if _, err := io.ReadFull(br, lenb[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return fmt.Errorf("replica: restore: %w", err)
		}
		n := binary.BigEndian.Uint32(lenb[:])
		if n == 0 || n > wire.MaxRecord {
			return fmt.Errorf("replica: restore: implausible record length %d", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return fmt.Errorf("replica: restore: %w", err)
		}
		rec, err := wire.DecodeRecord(buf)
		if err != nil {
			return fmt.Errorf("replica: restore: %w", err)
		}
		s.Apply(rec.Key, rec.Value, rec.TS)
	}
}

// restoreGob restores a legacy snapshot: one streaming gob encoding of the
// full entry slice.
func (s *Store) restoreGob(r io.Reader) error {
	var entries []snapshotEntry
	if err := gob.NewDecoder(r).Decode(&entries); err != nil {
		return fmt.Errorf("replica: restore: %w", err)
	}
	for _, e := range entries {
		s.Apply(e.Key, e.Value, e.TS)
	}
	return nil
}
