package replica

import (
	"encoding/gob"
	"fmt"
	"io"
)

// snapshotEntry is the serialized form of one stored key.
type snapshotEntry struct {
	Key   string
	Value []byte
	TS    Timestamp
}

// Snapshot serializes the store's full contents (gob-framed). It is the
// replica's stable-storage checkpoint: a crashed process restarted from a
// snapshot plus re-delivered commits converges, because Apply is
// idempotent and timestamp-ordered.
func (s *Store) Snapshot(w io.Writer) error {
	s.mu.Lock()
	entries := make([]snapshotEntry, 0, len(s.data))
	for k, e := range s.data {
		v := make([]byte, len(e.value))
		copy(v, e.value)
		entries = append(entries, snapshotEntry{Key: k, Value: v, TS: e.ts})
	}
	s.mu.Unlock()

	if err := gob.NewEncoder(w).Encode(entries); err != nil {
		return fmt.Errorf("replica: snapshot: %w", err)
	}
	return nil
}

// Restore merges a snapshot into the store. Entries older than what the
// store already holds are ignored (timestamp-ordered Apply), so restoring
// an old snapshot never regresses state.
func (s *Store) Restore(r io.Reader) error {
	var entries []snapshotEntry
	if err := gob.NewDecoder(r).Decode(&entries); err != nil {
		return fmt.Errorf("replica: restore: %w", err)
	}
	for _, e := range entries {
		s.Apply(e.Key, e.Value, e.TS)
	}
	return nil
}
