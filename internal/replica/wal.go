package replica

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// walRecord is one journaled write.
type walRecord struct {
	Key   string
	Value []byte
	TS    Timestamp
}

// WAL is a write-ahead journal of committed writes, complementing the
// coarse-grained Snapshot: a replica that journals every Apply can rebuild
// its store after a process crash by replaying the log (entries are
// timestamp-ordered and idempotent, so replaying over a snapshot — or
// twice — is harmless).
type WAL struct {
	mu   sync.Mutex
	f    *os.File
	enc  *gob.Encoder
	path string
}

// OpenWAL opens (creating if needed) the journal at path for appending.
func OpenWAL(path string) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("replica: open wal: %w", err)
	}
	return &WAL{f: f, enc: gob.NewEncoder(f), path: path}, nil
}

// Path returns the journal's file path.
func (w *WAL) Path() string { return w.path }

// Append journals one committed write and syncs it to stable storage.
func (w *WAL) Append(key string, value []byte, ts Timestamp) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return errors.New("replica: wal closed")
	}
	if err := w.enc.Encode(walRecord{Key: key, Value: value, TS: ts}); err != nil {
		return fmt.Errorf("replica: wal append: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("replica: wal sync: %w", err)
	}
	return nil
}

// Close closes the journal file.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}

// ReplayWAL reads the journal at path and applies every decodable record to
// the store, stopping silently at a truncated tail (the record being
// written when the process died). It returns the number of records applied.
func ReplayWAL(path string, s *Store) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("replica: open wal for replay: %w", err)
	}
	defer f.Close()
	dec := gob.NewDecoder(f)
	applied := 0
	for {
		var rec walRecord
		if err := dec.Decode(&rec); err != nil {
			if errors.Is(err, io.EOF) {
				return applied, nil
			}
			// A torn tail is expected after a crash; anything already
			// decoded is applied, the rest is unrecoverable noise.
			return applied, nil
		}
		s.Apply(rec.Key, rec.Value, rec.TS)
		applied++
	}
}

// AttachJournal makes the store append every successful Apply to the WAL.
// Attach after replay, before serving traffic.
func (s *Store) AttachJournal(w *WAL) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.journal = w
}
