package replica

import (
	"bytes"
	"encoding/binary"
	//lint:ignore wireclosed legacy WAL fallback: journals from pre-codec sessions hold gob records; decode-only, never written
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"arbor/internal/wire"
)

// walRecord is the legacy (gob) form of one journaled write, kept only so
// journals written by earlier releases replay through the fallback path.
type walRecord struct {
	Key   string
	Value []byte
	TS    Timestamp
}

// walMaxRecord bounds a record's encoded size during replay, so a corrupt
// length prefix cannot ask for an absurd allocation.
const walMaxRecord = wire.MaxRecord

// walBufPool recycles append buffers; WAL appends sit on every committed
// write, so the encode must not allocate per record.
var walBufPool = sync.Pool{New: func() any { return new([]byte) }}

// WAL is a write-ahead journal of committed writes, complementing the
// coarse-grained Snapshot: a replica that journals every Apply can rebuild
// its store after a process crash by replaying the log (entries are
// timestamp-ordered and idempotent, so replaying over a snapshot — or
// twice — is harmless).
type WAL struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

// OpenWAL opens (creating if needed) the journal at path for appending.
func OpenWAL(path string) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("replica: open wal: %w", err)
	}
	return &WAL{f: f, path: path}, nil
}

// Path returns the journal's file path.
func (w *WAL) Path() string { return w.path }

// Append journals one committed write and syncs it to stable storage.
// Each record is a length-prefixed, self-contained binary record (see
// wire.Record): a journal is decodable from any record boundary, so
// sessions appended by successive process incarnations replay seamlessly
// (a single streaming encoder with cross-record state would poison replay
// of everything after the first session — the bug class the chaos harness
// caught in the original gob WAL). Journals may freely mix legacy gob
// records and binary records; replay tells them apart by the record's
// first byte.
func (w *WAL) Append(key string, value []byte, ts Timestamp) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return errors.New("replica: wal closed")
	}
	bp := walBufPool.Get().(*[]byte)
	buf := appendStoreRecord((*bp)[:0], key, value, ts)
	_, err := w.f.Write(buf)
	*bp = buf
	walBufPool.Put(bp)
	if err != nil {
		return fmt.Errorf("replica: wal append: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("replica: wal sync: %w", err)
	}
	return nil
}

// Close closes the journal file.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}

// decodeWALBody parses one record body: a binary wire record, or — for
// journals written by earlier releases — a self-contained gob blob.
func decodeWALBody(buf []byte) (wire.Record, bool) {
	if rec, err := wire.DecodeRecord(buf); err == nil {
		return rec, true
	} else if !errors.Is(err, wire.ErrNotRecord) {
		return wire.Record{}, false
	}
	var legacy walRecord
	if err := gob.NewDecoder(bytes.NewReader(buf)).Decode(&legacy); err != nil {
		return wire.Record{}, false
	}
	return wire.Record{Key: legacy.Key, Value: legacy.Value, TS: legacy.TS}, true
}

// ReplayWAL reads the journal at path and applies every decodable record to
// the store, stopping silently at a truncated tail (the record being
// written when the process died). It returns the number of records applied.
func ReplayWAL(path string, s *Store) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("replica: open wal for replay: %w", err)
	}
	defer f.Close()
	applied := 0
	for {
		// A torn tail — short header, short payload, undecodable record or
		// an implausible length — is expected after a crash: anything
		// already decoded is applied, the rest is unrecoverable noise.
		var hdr [4]byte
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			return applied, nil
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n == 0 || n > walMaxRecord {
			return applied, nil
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(f, buf); err != nil {
			return applied, nil
		}
		rec, ok := decodeWALBody(buf)
		if !ok {
			return applied, nil
		}
		s.Apply(rec.Key, rec.Value, rec.TS)
		applied++
	}
}

// AttachJournal makes the store append every successful Apply to the WAL.
// Attach after replay, before serving traffic.
func (s *Store) AttachJournal(w *WAL) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.journal = w
}
