package replica

import (
	"context"
	"sync"
	"time"

	"arbor/internal/transport"
	"arbor/internal/wire"
)

// opClass partitions the sheddable request types by shed priority. Phase-two
// traffic (commit, abort) and liveness/sync traffic never pass through the
// gate at all: a prepared site must always hear the transaction's outcome,
// so overload can delay phase two but never refuse it.
type opClass int

const (
	// classRead: reads and read-side version probes — shed first. A shed
	// read costs the client one skip to a sibling site.
	classRead opClass = iota
	// classPrepare: phase-one prepares — shed only when even the reserved
	// headroom is gone. A shed prepare is a clean abort, never an in-doubt
	// write.
	classPrepare
	numClasses
)

// Default admission-gate sizing. The limits are deliberately generous: the
// gate should be invisible until a site is genuinely saturated, so ordinary
// unit tests and sim traces never see a shed.
const (
	// DefaultMaxInflight bounds concurrently served gated requests per
	// replica (reads, version probes and prepares; never phase two).
	DefaultMaxInflight = 64
	// defaultQueueFactor sizes each class's wait queue relative to the
	// in-flight limit.
	defaultQueueFactor = 2
	// admitRetryAfterUnit scales the retry-after hint by queue occupancy:
	// an empty queue hints one unit, a full one proportionally more. The
	// hint is a pure function of queue state, so deterministic schedules
	// produce deterministic hints.
	admitRetryAfterUnit = 2 * time.Millisecond
)

// prepareReserve returns the slice of the in-flight limit only prepares may
// use: reads saturate earlier, so phase-one work still finds a slot on a
// busy-but-healthy site (shed priority: reads before prepares). The reserve
// never consumes the whole limit — reads must keep at least one slot, or a
// read-only workload on a tiny limit would queue forever with no prepare
// traffic to drain it.
func prepareReserve(limit int) int {
	reserve := limit / 4
	if reserve < 1 {
		reserve = 1
	}
	if reserve >= limit {
		reserve = limit - 1
	}
	return reserve
}

// gateItem is one queued (or running) gated request.
type gateItem struct {
	from  transport.Addr
	reqID uint64
	class opClass
	// budget is the request's remaining deadline at arrival (zero = none);
	// enq anchors the expiry check on dequeue.
	budget time.Duration
	enq    time.Time
	serve  func()
}

// gate is the replica's bounded in-flight admission controller. Requests of
// the gated classes either start immediately (a slot is free), wait in a
// small per-class FIFO, or are shed with a typed OverloadedResp. Serving
// happens on worker goroutines — the store and lock table are already
// mutex-guarded for the anti-entropy syncer, so gated handlers are safe off
// the event loop — which is what makes "in flight" a real quantity to bound.
type gate struct {
	r        *Replica
	limit    int
	reserve  int
	queueCap int

	mu       sync.Mutex
	inflight int
	queues   [numClasses][]gateItem

	wg sync.WaitGroup
}

func newGate(r *Replica, maxInflight int) *gate {
	if maxInflight <= 0 {
		maxInflight = DefaultMaxInflight
	}
	return &gate{
		r:        r,
		limit:    maxInflight,
		reserve:  prepareReserve(maxInflight),
		queueCap: maxInflight * defaultQueueFactor,
	}
}

// classLimit is the in-flight ceiling for the class: reads stop short of
// the prepare reserve.
func (g *gate) classLimit(class opClass) int {
	if class == classRead {
		return g.limit - g.reserve
	}
	return g.limit
}

// depth reports the total queued work (both classes).
func (g *gate) depth() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.queues[classRead]) + len(g.queues[classPrepare])
}

// idle reports whether nothing gated is running or queued.
func (g *gate) idle() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inflight == 0 && len(g.queues[classRead]) == 0 && len(g.queues[classPrepare]) == 0
}

// tryAdmit is the gate's fast path: when the site is healthy (not
// saturated, draining or browning out) and a slot is free with nothing
// queued ahead, it claims the slot and the caller serves the request
// inline on its own goroutine — no closure, no worker, no handoff. The
// caller must call finish() afterwards. This is what keeps the gate
// invisible on the hot path: an unloaded site pays one atomic load and one
// uncontended mutex over the ungated code.
func (g *gate) tryAdmit(class opClass) bool {
	if g.r.saturated.Load() || g.r.draining.Load() || g.r.slowBy.Load() != 0 {
		return false
	}
	g.mu.Lock()
	if g.inflight < g.classLimit(class) &&
		len(g.queues[classPrepare]) == 0 && len(g.queues[classRead]) == 0 {
		g.inflight++
		g.mu.Unlock()
		return true
	}
	g.mu.Unlock()
	return false
}

// finish releases an inline-admitted slot, first draining any work that
// queued behind it (same loop as a worker's run).
func (g *gate) finish() {
	for {
		next, ok := g.next()
		if !ok {
			return
		}
		g.serveOne(next)
	}
}

// submit admits, queues, or sheds one gated request. serve runs on a worker
// goroutine once a slot is free. Dispatch only reaches submit when tryAdmit
// declined — under pressure or fault injection — so the closure and the
// goroutine are off the hot path.
func (g *gate) submit(from transport.Addr, reqID uint64, class opClass, deadlineMillis uint64, serve func()) {
	if g.r.saturated.Load() || g.r.draining.Load() {
		// Deterministic overload (the sim's saturate= verb) and drain both
		// refuse all gated work outright.
		g.r.shed(from, reqID, "refused", g.retryAfterHint(class))
		return
	}
	item := gateItem{from: from, reqID: reqID, class: class, serve: serve}
	if deadlineMillis > 0 {
		item.budget = time.Duration(deadlineMillis) * time.Millisecond
		item.enq = time.Now()
	}
	g.mu.Lock()
	if g.inflight < g.classLimit(class) {
		g.inflight++
		g.wg.Add(1)
		g.mu.Unlock()
		go g.run(item)
		return
	}
	if len(g.queues[class]) >= g.queueCap {
		g.mu.Unlock()
		g.r.shed(from, reqID, "queue_full", g.retryAfterHint(class))
		return
	}
	g.queues[class] = append(g.queues[class], item)
	g.updateQueueDepth()
	g.mu.Unlock()
}

// retryAfterHint derives the overload reply's backoff hint from queue
// occupancy — a pure function of gate state, so deterministic runs shed
// with deterministic hints.
func (g *gate) retryAfterHint(class opClass) time.Duration {
	g.mu.Lock()
	queued := len(g.queues[class])
	g.mu.Unlock()
	return time.Duration(queued+1) * admitRetryAfterUnit
}

// run serves the admitted item, then keeps draining the wait queues until
// they are empty, preferring prepares (phase-one work beats read work on a
// recovering-from-pressure site).
func (g *gate) run(item gateItem) {
	defer g.wg.Done()
	g.serveOne(item)
	for {
		next, ok := g.next()
		if !ok {
			return
		}
		g.serveOne(next)
	}
}

// serveOne executes one admitted request, honoring the slowsite= delay and
// dropping (not answering) work addressed to a crashed replica.
func (g *gate) serveOne(item gateItem) {
	if d := time.Duration(g.r.slowBy.Load()); d > 0 {
		time.Sleep(d)
	}
	if g.r.Health() == HealthDown {
		return // fail-stop: no replies while down
	}
	item.serve()
}

// next pops the oldest queued item, prepares first. Items whose deadline
// budget expired while they waited are shed ("expired") and skipped — the
// caller has already given up on them. Returns ok=false (releasing the
// slot) when both queues are empty.
func (g *gate) next() (gateItem, bool) {
	now := time.Now()
	for {
		g.mu.Lock()
		var item gateItem
		found := false
		for _, class := range [...]opClass{classPrepare, classRead} {
			if len(g.queues[class]) > 0 {
				item = g.queues[class][0]
				g.queues[class] = g.queues[class][1:]
				found = true
				break
			}
		}
		if !found {
			g.inflight--
			g.updateQueueDepth()
			g.mu.Unlock()
			return gateItem{}, false
		}
		g.updateQueueDepth()
		g.mu.Unlock()
		if item.budget > 0 && now.Sub(item.enq) > item.budget {
			g.r.shed(item.from, item.reqID, "expired", 0)
			continue
		}
		return item, true
	}
}

// updateQueueDepth publishes the combined queue depth; callers hold g.mu.
func (g *gate) updateQueueDepth() {
	if g.r.instr != nil && g.r.instr.admitQueueDepth != nil {
		g.r.instr.admitQueueDepth.Set(float64(len(g.queues[classRead]) + len(g.queues[classPrepare])))
	}
}

// shed answers a gated request with the typed overload reply and counts it.
// reason is refused (gate closed: saturated or draining), queue_full, or
// expired (budget spent while queued).
func (r *Replica) shed(to transport.Addr, reqID uint64, reason string, retryAfter time.Duration) {
	r.stats.sheds.Add(1)
	if r.instr != nil {
		r.instr.sheds.With(r.instr.site, reason).Inc()
	}
	r.reply(to, wire.OverloadedResp{ReqID: reqID, RetryAfterMillis: uint64(retryAfter / time.Millisecond)})
}

// Saturate forces (or, with on=false, stops forcing) the admission gate to
// shed every gated request immediately — the sim's deterministic overload
// fault. Phase-two commits and aborts are still served.
func (r *Replica) Saturate(on bool) {
	r.saturated.Store(on)
}

// Saturated reports whether the deterministic overload fault is armed.
func (r *Replica) Saturated() bool { return r.saturated.Load() }

// SlowBy injects d of extra service time into every gated request (zero
// clears it) — the sim's slowsite= fault, a brownout rather than a refusal.
func (r *Replica) SlowBy(d time.Duration) {
	r.slowBy.Store(int64(d))
}

// Draining reports whether a drain is in progress or complete.
func (r *Replica) Draining() bool { return r.draining.Load() }

// Drain gracefully removes the replica from service: new gated work (reads,
// version probes, prepares) is shed immediately, in-flight work and every
// prepared transaction are allowed to resolve, and the replica then leaves
// the admission path by going HealthDown — the same lifecycle state a crash
// produces, so recovery (instant or catch-up) is the existing path back.
// Stable storage is untouched: every acknowledged write survives.
//
// Drain returns once the replica is quiesced, or with ctx's error if the
// deadline expires first (the replica stays draining either way; prepared
// transactions it is still waiting on resolve via commit, abort or lock
// expiry).
func (r *Replica) Drain(ctx context.Context) error {
	r.draining.Store(true)
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	for {
		if r.quiesced() {
			r.health.Store(int32(HealthDown))
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// quiesced reports whether no gated work is running or queued and no
// unexpired prepared transaction still holds a lock.
func (r *Replica) quiesced() bool {
	if !r.gate.idle() {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	now := time.Now()
	for _, l := range r.locks {
		if now.Before(l.expires) {
			return false
		}
	}
	return true
}
