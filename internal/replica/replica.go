package replica

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"arbor/internal/obs"
	"arbor/internal/transport"
)

// lockState tracks a prepared (phase-one) transaction on one key.
type lockState struct {
	txID    uint64
	ts      Timestamp
	expires time.Time
}

// Stats counts the operations a replica served; the cluster uses them to
// measure empirical per-replica load.
type Stats struct {
	Reads uint64
	// Versions counts all version requests served; VersionsForWrite is the
	// subset issued as the version-discovery step of writes, so
	// Versions-VersionsForWrite are the read-side version serves.
	Versions         uint64
	VersionsForWrite uint64
	Prepares         uint64
	Commits          uint64
	Aborts           uint64
	Pings            uint64
	// SyncServes counts anti-entropy digest and fetch pages served to
	// recovering peers; Refusals counts read/version probes turned away
	// while this replica was catching up.
	SyncServes uint64
	Refusals   uint64
	// Sheds counts gated requests the admission controller answered with a
	// typed overload reply instead of serving (gate closed, queue full, or
	// budget expired while queued).
	Sheds    uint64
	Messages uint64
}

// Replica is one replica site. Create with New, start its event loop with
// Start, and stop it with Stop.
type Replica struct {
	site int
	ep   transport.Conn

	store *Store

	mu    sync.Mutex
	locks map[string]lockState

	health    atomic.Int32 // Health lifecycle state; zero value is HealthLive
	failpoint atomic.Int32 // armed FailPoint, see SetFailPoint

	lockTTL time.Duration

	// syncer state: the anti-entropy driver goroutine and its reply router.
	// syncMu guards the lifecycle fields; syncPending routes SyncDigestResp/
	// SyncFetchResp messages from the event loop to in-flight sync calls.
	syncMu      sync.Mutex
	syncStop    chan struct{} // closes to abort the running syncer
	syncDone    chan struct{} // closes when the syncer goroutine exits; nil if none
	syncPending map[uint64]chan any
	syncReqID   atomic.Uint64
	syncCursors map[int]string // per-source-level resume point (next StartAfter)
	syncHook    func(level int, cursor string)

	syncStats struct {
		keysPulled, batches, retries, completions atomic.Uint64
		active                                    atomic.Bool
	}

	stats struct {
		reads, versions, versionsForWrite, prepares, commits, aborts, pings, syncServes, refusals, sheds, messages atomic.Uint64
	}

	// Admission control: gate bounds in-flight gated work; saturated and
	// draining force immediate sheds (deterministic fault / graceful
	// drain); slowBy injects extra service time into gated requests.
	gate        *gate
	maxInflight int
	saturated   atomic.Bool
	draining    atomic.Bool
	slowBy      atomic.Int64

	// instr holds the optional obs instruments (nil when observability is
	// off; all recording methods are nil-safe no-ops then).
	instr *instruments

	stop chan struct{}
	done chan struct{}
}

// instruments are the replica's pre-resolved obs handles: per-site serve
// counters split by message type, lock refusal counters and a lock-wait
// histogram.
type instruments struct {
	serveRead         *obs.Counter
	serveVersionRead  *obs.Counter
	serveVersionWrite *obs.Counter
	servePrepare      *obs.Counter
	serveCommit       *obs.Counter
	serveAbort        *obs.Counter
	servePing         *obs.Counter
	serveSyncDigest   *obs.Counter
	serveSyncFetch    *obs.Counter
	catchupRefusals   *obs.Counter
	syncKeysPulled    *obs.Counter
	syncBatches       *obs.Counter
	syncRetries       *obs.Counter
	syncCompletions   *obs.Counter
	lockRefusals      *obs.CounterVec // reason: locked | stale
	lockWait          *obs.Histogram
	sheds             *obs.CounterVec // reason: refused | queue_full | expired
	admitQueueDepth   *obs.Gauge
	site              string
}

// Option configures a Replica.
type Option interface {
	apply(*Replica)
}

type lockTTLOption time.Duration

func (o lockTTLOption) apply(r *Replica) { r.lockTTL = time.Duration(o) }

// WithLockTTL bounds how long a prepared-but-unresolved transaction may hold
// a key lock before other writers can steal it (protection against crashed
// coordinators). The default is 2 seconds.
func WithLockTTL(d time.Duration) Option { return lockTTLOption(d) }

type maxInflightOption int

func (o maxInflightOption) apply(r *Replica) { r.maxInflight = int(o) }

// WithMaxInflight bounds how many gated requests (reads, version probes,
// prepares) the replica serves concurrently before queuing and then
// shedding; n <= 0 keeps DefaultMaxInflight. Phase-two commits and aborts
// are never gated.
func WithMaxInflight(n int) Option { return maxInflightOption(n) }

type observerOption struct{ reg *obs.Registry }

func (o observerOption) apply(r *Replica) {
	if o.reg == nil {
		return
	}
	serves := o.reg.CounterVec("arbor_replica_serves_total",
		"Requests served by a replica, by site and message type.", "site", "type")
	site := strconv.Itoa(r.site)
	r.instr = &instruments{
		site:              site,
		serveRead:         serves.With(site, "read"),
		serveVersionRead:  serves.With(site, "version_read"),
		serveVersionWrite: serves.With(site, "version_write"),
		servePrepare:      serves.With(site, "prepare"),
		serveCommit:       serves.With(site, "commit"),
		serveAbort:        serves.With(site, "abort"),
		servePing:         serves.With(site, "ping"),
		serveSyncDigest:   serves.With(site, "sync_digest"),
		serveSyncFetch:    serves.With(site, "sync_fetch"),
		catchupRefusals: o.reg.CounterVec("arbor_replica_catchup_refusals_total",
			"Read/version probes refused while the replica was catching up, by site.",
			"site").With(site),
		syncKeysPulled: o.reg.CounterVec("arbor_replica_sync_keys_pulled_total",
			"Keys whose value the anti-entropy syncer pulled from a live peer, by site.",
			"site").With(site),
		syncBatches: o.reg.CounterVec("arbor_replica_sync_batches_total",
			"Digest pages the anti-entropy syncer processed, by site.",
			"site").With(site),
		syncRetries: o.reg.CounterVec("arbor_replica_sync_retries_total",
			"Anti-entropy rounds retried after every candidate source failed, by site.",
			"site").With(site),
		syncCompletions: o.reg.CounterVec("arbor_replica_sync_completions_total",
			"Anti-entropy passes completed (replica converged to its sources), by site.",
			"site").With(site),
		lockRefusals: o.reg.CounterVec("arbor_replica_lock_refusals_total",
			"Prepare requests refused, by site and reason (locked = lock contention, stale = superseded timestamp).",
			"site", "reason"),
		lockWait: o.reg.Histogram("arbor_replica_lock_wait_seconds",
			"Time prepare handlers spent acquiring the replica's lock-table mutex."),
		sheds: o.reg.CounterVec("arbor_replica_sheds_total",
			"Gated requests answered with a typed overload reply, by site and reason (refused = saturated or draining, queue_full = wait queue overflow, expired = deadline budget spent while queued).",
			"site", "reason"),
		admitQueueDepth: o.reg.GaugeVec("arbor_replica_admission_queue_depth",
			"Requests waiting in the replica's admission queue, by site.",
			"site").With(site),
	}
}

// WithObserver instruments the replica against the registry (a nil registry
// leaves it uninstrumented).
func WithObserver(reg *obs.Registry) Option { return observerOption{reg: reg} }

// New creates a replica for the given site ID, attached to the endpoint.
func New(site int, ep transport.Conn, opts ...Option) *Replica {
	r := &Replica{
		site:    site,
		ep:      ep,
		store:   NewStore(),
		locks:   make(map[string]lockState),
		lockTTL: 2 * time.Second,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	for _, opt := range opts {
		opt.apply(r)
	}
	r.gate = newGate(r, r.maxInflight)
	return r
}

// Site returns the replica's site ID.
func (r *Replica) Site() int { return r.site }

// Store exposes the replica's stable storage (used by tests and by the
// cluster to inspect state).
func (r *Replica) Store() *Store { return r.store }

// Start launches the replica's event loop.
func (r *Replica) Start() {
	go r.run()
}

// Stop terminates the event loop (and any running syncer), waits for both
// to exit, and waits out any gated handlers still running on the admission
// gate's workers.
func (r *Replica) Stop() {
	r.abortSync()
	select {
	case <-r.stop:
	default:
		close(r.stop)
	}
	<-r.done
	r.gate.wg.Wait()
}

// FailPoint names a deterministic crash trigger: the replica fail-stops
// the moment the named request arrives, before processing it. Fault-window
// tests use it to place a crash exactly between a transaction's phases —
// e.g. FailOnCommit models a participant that voted yes in prepare and
// died before the commit reached its store.
type FailPoint int

// Fail points.
const (
	// FailNone disables the trigger.
	FailNone FailPoint = iota
	// FailOnPrepare crashes on the next PrepareReq (before voting).
	FailOnPrepare
	// FailOnCommit crashes on the next CommitReq (after voting yes in
	// prepare, before the write reaches stable storage).
	FailOnCommit
)

// SetFailPoint arms (or, with FailNone, disarms) the crash trigger. The
// trigger fires once: the replica crashes and the fail point resets.
func (r *Replica) SetFailPoint(fp FailPoint) {
	r.failpoint.Store(int32(fp))
}

// shouldFail reports whether the armed fail point matches the message, and
// disarms it.
func (r *Replica) shouldFail(payload any) bool {
	fp := FailPoint(r.failpoint.Load())
	if fp == FailNone {
		return false
	}
	var hit bool
	switch payload.(type) {
	case PrepareReq:
		hit = fp == FailOnPrepare
	case CommitReq:
		hit = fp == FailOnCommit
	}
	if hit {
		r.failpoint.Store(int32(FailNone))
	}
	return hit
}

// Crash makes the replica fail-stop: all incoming messages are ignored and
// volatile lock state is discarded. Stable storage is retained, and so are
// the anti-entropy cursors — a crash mid-catch-up resumes where it left off
// on the next RecoverCatchingUp.
func (r *Replica) Crash() {
	r.health.Store(int32(HealthDown))
	r.abortSync()
	r.mu.Lock()
	r.locks = make(map[string]lockState)
	r.mu.Unlock()
}

// Recover brings a crashed replica back instantly, with its stable storage
// intact but without reconciling state it missed while down (the paper's
// idealized model). RecoverCatchingUp is the anti-entropy path. Recovery
// restores full admission: any saturate/slowsite fault or drain state is
// cleared.
func (r *Replica) Recover() {
	r.abortSync()
	r.clearOverload()
	r.health.Store(int32(HealthLive))
}

// clearOverload resets the overload faults and drain state; every recovery
// path calls it so a recovered replica admits work again.
func (r *Replica) clearOverload() {
	r.saturated.Store(false)
	r.draining.Store(false)
	r.slowBy.Store(0)
}

// Crashed reports whether the replica is currently down.
func (r *Replica) Crashed() bool { return r.Health() == HealthDown }

// Stats returns a snapshot of the replica's served-operation counters.
func (r *Replica) Stats() Stats {
	return Stats{
		Reads:            r.stats.reads.Load(),
		Versions:         r.stats.versions.Load(),
		VersionsForWrite: r.stats.versionsForWrite.Load(),
		Prepares:         r.stats.prepares.Load(),
		Commits:          r.stats.commits.Load(),
		Aborts:           r.stats.aborts.Load(),
		Pings:            r.stats.pings.Load(),
		SyncServes:       r.stats.syncServes.Load(),
		Refusals:         r.stats.refusals.Load(),
		Sheds:            r.stats.sheds.Load(),
		Messages:         r.stats.messages.Load(),
	}
}

// run is the replica's event loop.
func (r *Replica) run() {
	defer close(r.done)
	for {
		select {
		case <-r.stop:
			return
		case msg := <-r.ep.Recv():
			if r.Health() == HealthDown {
				continue // fail-stop: no replies while down
			}
			if r.shouldFail(msg.Payload) {
				r.Crash() // fail point: die before processing the request
				continue
			}
			r.stats.messages.Add(1)
			r.handle(msg)
		}
	}
}

// handle dispatches one request and sends the reply. Replies are sent
// best-effort; a send failure means the requester vanished. Reads, version
// probes and prepares pass through the admission gate: on an unloaded site
// tryAdmit claims a slot and the handler runs inline right here (the
// pre-gate hot path, unchanged); under pressure or fault injection submit
// queues, sheds, or hands the request to a worker goroutine. Phase-two
// commits and aborts, pings and sync traffic stay on the event loop and
// are never shed.
func (r *Replica) handle(msg transport.Message) {
	switch req := msg.Payload.(type) {
	case ReadReq:
		if r.Health() == HealthCatchingUp {
			r.refuse(msg.From, ReadResp{ReqID: req.ReqID, Key: req.Key, Refused: true})
			return
		}
		if r.gate.tryAdmit(classRead) {
			r.serveRead(msg.From, req)
			r.gate.finish()
		} else {
			r.gate.submit(msg.From, req.ReqID, classRead, req.DeadlineMillis, func() { r.serveRead(msg.From, req) })
		}
	case VersionReq:
		if r.Health() == HealthCatchingUp {
			r.refuse(msg.From, VersionResp{ReqID: req.ReqID, Key: req.Key, Refused: true})
			return
		}
		if r.gate.tryAdmit(classRead) {
			r.serveVersion(msg.From, req)
			r.gate.finish()
		} else {
			r.gate.submit(msg.From, req.ReqID, classRead, req.DeadlineMillis, func() { r.serveVersion(msg.From, req) })
		}
	case PrepareReq:
		if r.gate.tryAdmit(classPrepare) {
			r.servePrepare(msg.From, req)
			r.gate.finish()
		} else {
			r.gate.submit(msg.From, req.ReqID, classPrepare, req.DeadlineMillis, func() { r.servePrepare(msg.From, req) })
		}
	case CommitReq:
		r.stats.commits.Add(1)
		if r.instr != nil {
			r.instr.serveCommit.Inc()
		}
		ok := r.commit(req)
		r.reply(msg.From, CommitResp{ReqID: req.ReqID, TxID: req.TxID, OK: ok})
	case AbortReq:
		r.stats.aborts.Add(1)
		if r.instr != nil {
			r.instr.serveAbort.Inc()
		}
		r.abort(req)
		r.reply(msg.From, AbortResp{ReqID: req.ReqID, TxID: req.TxID})
	case PingReq:
		r.stats.pings.Add(1)
		if r.instr != nil {
			r.instr.servePing.Inc()
		}
		r.reply(msg.From, PingResp{ReqID: req.ReqID, Site: r.site})
	case SyncDigestReq:
		r.stats.syncServes.Add(1)
		if r.instr != nil {
			r.instr.serveSyncDigest.Inc()
		}
		entries, more := r.store.DigestPage(req.StartAfter, req.Limit)
		r.reply(msg.From, SyncDigestResp{ReqID: req.ReqID, Entries: entries, More: more})
	case SyncFetchReq:
		r.stats.syncServes.Add(1)
		if r.instr != nil {
			r.instr.serveSyncFetch.Inc()
		}
		items := make([]SyncItem, 0, len(req.Keys))
		for _, key := range req.Keys {
			value, ts, found := r.store.Get(key)
			items = append(items, SyncItem{Key: key, Value: value, TS: ts, Found: found})
		}
		r.reply(msg.From, SyncFetchResp{ReqID: req.ReqID, Items: items})
	case SyncDigestResp:
		r.deliverSyncReply(req.ReqID, req)
	case SyncFetchResp:
		r.deliverSyncReply(req.ReqID, req)
	}
}

// serveRead answers a ReadReq (admission-gated; runs on a gate worker).
func (r *Replica) serveRead(from transport.Addr, req ReadReq) {
	r.stats.reads.Add(1)
	if r.instr != nil {
		r.instr.serveRead.Inc()
	}
	value, ts, found := r.store.Get(req.Key)
	r.reply(from, ReadResp{ReqID: req.ReqID, Key: req.Key, Value: value, TS: ts, Found: found})
}

// serveVersion answers a VersionReq (admission-gated; runs on a gate worker).
func (r *Replica) serveVersion(from transport.Addr, req VersionReq) {
	r.stats.versions.Add(1)
	if req.ForWrite {
		r.stats.versionsForWrite.Add(1)
	}
	if r.instr != nil {
		if req.ForWrite {
			r.instr.serveVersionWrite.Inc()
		} else {
			r.instr.serveVersionRead.Inc()
		}
	}
	ts, found := r.store.Version(req.Key)
	r.reply(from, VersionResp{ReqID: req.ReqID, Key: req.Key, TS: ts, Found: found})
}

// servePrepare answers a PrepareReq (admission-gated; runs on a gate
// worker — the lock table is mutex-guarded, so concurrent prepares are
// serialized exactly as they were on the event loop).
func (r *Replica) servePrepare(from transport.Addr, req PrepareReq) {
	r.stats.prepares.Add(1)
	if r.instr != nil {
		r.instr.servePrepare.Inc()
	}
	ok, reason := r.prepare(req)
	if !ok && r.instr != nil {
		r.instr.lockRefusals.With(r.instr.site, reason).Inc()
	}
	r.reply(from, PrepareResp{ReqID: req.ReqID, TxID: req.TxID, OK: ok, Reason: reason})
}

// refuse turns a probe away while catching up: a fast negative reply beats
// silence, which would cost the client a full timeout.
func (r *Replica) refuse(to transport.Addr, payload any) {
	r.stats.refusals.Add(1)
	if r.instr != nil {
		r.instr.catchupRefusals.Inc()
	}
	r.reply(to, payload)
}

func (r *Replica) reply(to transport.Addr, payload any) {
	_ = r.ep.Send(to, payload) // best-effort; the caller handles timeouts
}

// prepare locks the key for the transaction if it is free (or its lock
// expired) and the proposed timestamp supersedes the stored one.
func (r *Replica) prepare(req PrepareReq) (bool, string) {
	if r.instr != nil {
		waitStart := time.Now()
		r.mu.Lock()
		r.instr.lockWait.Observe(time.Since(waitStart))
	} else {
		r.mu.Lock()
	}
	defer r.mu.Unlock()
	now := time.Now()
	if l, ok := r.locks[req.Key]; ok && l.txID != req.TxID && now.Before(l.expires) {
		return false, "locked"
	}
	if ts, found := r.store.Version(req.Key); found && !req.TS.After(ts) {
		return false, "stale"
	}
	r.locks[req.Key] = lockState{txID: req.TxID, ts: req.TS, expires: now.Add(r.lockTTL)}
	return true, ""
}

// commit applies the write and releases the lock. Commits are accepted even
// without a visible lock (the lock may have expired or the replica may have
// crashed and recovered in between); the timestamped store keeps the
// operation idempotent and ordered.
func (r *Replica) commit(req CommitReq) bool {
	r.mu.Lock()
	if l, ok := r.locks[req.Key]; ok && l.txID == req.TxID {
		delete(r.locks, req.Key)
	}
	r.mu.Unlock()
	r.store.Apply(req.Key, req.Value, req.TS)
	return true
}

// abort releases the transaction's lock if it still holds it.
func (r *Replica) abort(req AbortReq) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if l, ok := r.locks[req.Key]; ok && l.txID == req.TxID {
		delete(r.locks, req.Key)
	}
}
