// Package replica implements a replica site of the simulated distributed
// system: a versioned key-value store addressed over the transport network,
// acting as a read/version server and as a two-phase-commit participant for
// quorum writes. Sites are fail-stop with stable storage: a crash drops all
// traffic and volatile lock state, while committed data survives recovery
// (the paper's transient, detectable failures).
package replica

import "arbor/internal/wire"

// The protocol's message vocabulary lives in internal/wire (the leaf
// package the codecs are defined against); these aliases keep replica the
// natural import for protocol code while guaranteeing the types the event
// loop switches on are the very types the codecs enumerate.

// Timestamp orders writes: higher version wins, and among equal versions
// the LOWER site identifier wins (§3.2.1 of the paper).
type Timestamp = wire.Timestamp

// Request/response payloads exchanged between clients and replicas; see
// the definitions in internal/wire for field semantics.
type (
	VersionReq     = wire.VersionReq
	VersionResp    = wire.VersionResp
	ReadReq        = wire.ReadReq
	ReadResp       = wire.ReadResp
	PrepareReq     = wire.PrepareReq
	PrepareResp    = wire.PrepareResp
	CommitReq      = wire.CommitReq
	CommitResp     = wire.CommitResp
	AbortReq       = wire.AbortReq
	AbortResp      = wire.AbortResp
	PingReq        = wire.PingReq
	PingResp       = wire.PingResp
	OverloadedResp = wire.OverloadedResp
)

// Anti-entropy catch-up messages; see internal/wire.
type (
	SyncDigestReq  = wire.SyncDigestReq
	DigestEntry    = wire.DigestEntry
	SyncDigestResp = wire.SyncDigestResp
	SyncFetchReq   = wire.SyncFetchReq
	SyncItem       = wire.SyncItem
	SyncFetchResp  = wire.SyncFetchResp
)
