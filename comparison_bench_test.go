package arbor_test

// Head-to-head live comparison at n = 15: the Agrawal–El Abbadi binary Tree
// Quorum protocol ("BINARY") against the paper's arbitrary protocol on an
// equivalent replica count (tree 1-3-5-7), both running over the same
// replica servers and in-memory transport.

import (
	"context"
	"testing"
	"time"

	"arbor"
	"arbor/internal/replica"
	"arbor/internal/tqclient"
	"arbor/internal/transport"
)

// newTreeQuorumBench wires 15 replicas heap-style plus one tree-quorum
// client.
func newTreeQuorumBench(b *testing.B) *tqclient.Client {
	b.Helper()
	net := transport.NewNetwork(transport.WithSeed(1))
	var replicas []*replica.Replica
	for site := 1; site <= 15; site++ {
		ep, err := net.Register(transport.Addr(site))
		if err != nil {
			b.Fatal(err)
		}
		r := replica.New(site, ep)
		r.Start()
		replicas = append(replicas, r)
	}
	ep, err := net.Register(-1)
	if err != nil {
		b.Fatal(err)
	}
	cli, err := tqclient.New(-1, ep, 3, tqclient.WithTimeout(time.Second))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		cli.Close()
		for _, r := range replicas {
			r.Stop()
		}
		net.Close()
	})
	return cli
}

func BenchmarkBinaryVsArbitraryLive(b *testing.B) {
	ctx := context.Background()

	tq := newTreeQuorumBench(b)
	if _, err := tq.Write(ctx, "k", []byte("v")); err != nil {
		b.Fatal(err)
	}
	b.Run("BINARY/read", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := tq.Read(ctx, "k"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("BINARY/write", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := tq.Write(ctx, "k", []byte("v")); err != nil {
				b.Fatal(err)
			}
		}
	})

	t, err := arbor.NewTree(3, 5, 7) // n = 15 on the arbitrary protocol
	if err != nil {
		b.Fatal(err)
	}
	c, err := arbor.NewCluster(t, arbor.WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Close)
	cli, err := c.NewClient()
	if err != nil {
		b.Fatal(err)
	}
	if _, err := cli.Write(ctx, "k", []byte("v")); err != nil {
		b.Fatal(err)
	}
	b.Run("ARBITRARY/read", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cli.Read(ctx, "k"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ARBITRARY/write", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cli.Write(ctx, "k", []byte("v")); err != nil {
				b.Fatal(err)
			}
		}
	})
}
