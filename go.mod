module arbor

go 1.22
