// Benchmarks regenerating every table and figure of the paper (run with
// `go test -bench=. -benchmem`), plus operational benchmarks of the tree
// substrate, the quorum machinery, and the live cluster.
//
// Paper-artifact benches (each iteration regenerates the artifact):
//
//	BenchmarkTable1      — Table 1 (Figure 1 node counts)
//	BenchmarkExample34   — §3.4 worked example
//	BenchmarkFigure2     — Figure 2 (communication costs, six configurations)
//	BenchmarkFigure3     — Figure 3 (read loads)
//	BenchmarkFigure4     — Figure 4 (write loads)
//	BenchmarkLimits      — §3.3 asymptotic availabilities
//	BenchmarkLowerBound  — §3.3 new lower bound vs tree quorums
package arbor_test

import (
	"context"
	"math/rand"
	"sort"
	"testing"
	"time"

	"arbor"
	"arbor/internal/core"
	"arbor/internal/figures"
	"arbor/internal/quorum"
	"arbor/internal/tree"
)

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := figures.Table1(); len(rows) != 3 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkExample34(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if r := figures.Example34(); r.N != 8 {
			b.Fatal("bad example")
		}
	}
}

func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if s := figures.Figure2(300); len(s) != 6 {
			b.Fatal("bad figure")
		}
	}
}

func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if s := figures.Figure3(300, figures.DefaultP); len(s) != 6 {
			b.Fatal("bad figure")
		}
	}
}

func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if s := figures.Figure4(300, figures.DefaultP); len(s) != 6 {
			b.Fatal("bad figure")
		}
	}
}

func BenchmarkLimits(b *testing.B) {
	ps := []float64{0.55, 0.65, 0.75, 0.85, 0.95}
	for i := 0; i < b.N; i++ {
		if rows := figures.Limits(ps); len(rows) != len(ps) {
			b.Fatal("bad limits")
		}
	}
}

func BenchmarkLowerBound(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := figures.LowerBound(10); len(rows) != 10 {
			b.Fatal("bad rows")
		}
	}
}

func BenchmarkAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows, err := figures.Ablation(64, 0.8); err != nil || len(rows) == 0 {
			b.Fatal(err)
		}
	}
}

func BenchmarkAlgorithm1Build(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := tree.Algorithm1(1024); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnalyze(b *testing.B) {
	t, err := tree.Algorithm1(1024)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := core.Analyze(t)
		if a.ReadCost == 0 {
			b.Fatal("bad analysis")
		}
	}
}

func BenchmarkPickReadQuorum(b *testing.B) {
	t, err := tree.Algorithm1(1024)
	if err != nil {
		b.Fatal(err)
	}
	proto, err := core.New(t)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if q := proto.PickReadQuorum(rng); len(q) == 0 {
			b.Fatal("empty quorum")
		}
	}
}

func BenchmarkPickWriteQuorum(b *testing.B) {
	t, err := tree.Algorithm1(1024)
	if err != nil {
		b.Fatal(err)
	}
	proto, err := core.New(t)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, q := proto.PickWriteQuorum(rng); len(q) == 0 {
			b.Fatal("empty quorum")
		}
	}
}

func BenchmarkOptimalLoadLP(b *testing.B) {
	t := tree.Figure1()
	proto, err := core.New(t)
	if err != nil {
		b.Fatal(err)
	}
	bc, err := proto.EnumerateBiCoterie()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := quorum.OptimalLoad(bc.Reads); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExactAvailability(b *testing.B) {
	t := tree.Figure1()
	proto, err := core.New(t)
	if err != nil {
		b.Fatal(err)
	}
	bc, err := proto.EnumerateBiCoterie()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := quorum.ExactAvailability(bc.Reads, 0.7); err != nil {
			b.Fatal(err)
		}
	}
}

// benchCluster spins up a cluster+client pair for operational benchmarks.
func benchCluster(b *testing.B, spec string) (*arbor.Cluster, *arbor.Client) {
	b.Helper()
	t, err := arbor.ParseTree(spec)
	if err != nil {
		b.Fatal(err)
	}
	c, err := arbor.NewCluster(t, arbor.WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Close)
	cli, err := c.NewClient()
	if err != nil {
		b.Fatal(err)
	}
	return c, cli
}

func BenchmarkClusterRead(b *testing.B) {
	_, cli := benchCluster(b, "1-3-5")
	ctx := context.Background()
	if _, err := cli.Write(ctx, "k", []byte("v")); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cli.Read(ctx, "k"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClusterWrite(b *testing.B) {
	_, cli := benchCluster(b, "1-3-5")
	ctx := context.Background()
	val := []byte("v")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cli.Write(ctx, "k", val); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterByConfiguration measures live read and write latency of
// three 16-replica configurations — the ablation of Figure 2's trade-off on
// the running system.
func BenchmarkClusterByConfiguration(b *testing.B) {
	configs := []struct {
		name string
		make func() (*arbor.Tree, error)
	}{
		{name: "MostlyRead16", make: func() (*arbor.Tree, error) { return arbor.MostlyRead(16) }},
		{name: "Balanced16", make: func() (*arbor.Tree, error) { return arbor.NewTree(4, 4, 8) }},
		{name: "MostlyWrite17", make: func() (*arbor.Tree, error) { return arbor.MostlyWrite(17) }},
	}
	for _, cfg := range configs {
		t, err := cfg.make()
		if err != nil {
			b.Fatal(err)
		}
		c, err := arbor.NewCluster(t, arbor.WithSeed(1))
		if err != nil {
			b.Fatal(err)
		}
		cli, err := c.NewClient()
		if err != nil {
			b.Fatal(err)
		}
		ctx := context.Background()
		if _, err := cli.Write(ctx, "k", []byte("v")); err != nil {
			b.Fatal(err)
		}
		b.Run(cfg.name+"/read", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := cli.Read(ctx, "k"); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(cfg.name+"/write", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := cli.Write(ctx, "k", []byte("v")); err != nil {
					b.Fatal(err)
				}
			}
		})
		c.Close()
	}
}

func BenchmarkTxnCommitTwoKeys(b *testing.B) {
	_, cli := benchCluster(b, "1-3-5")
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := cli.NewTxn()
		if err := tx.Write("a", []byte("1")); err != nil {
			b.Fatal(err)
		}
		if err := tx.Write("b", []byte("2")); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClusterWriteAlgorithm1_64(b *testing.B) {
	t, err := arbor.Algorithm1(64)
	if err != nil {
		b.Fatal(err)
	}
	c, err := arbor.NewCluster(t, arbor.WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Close)
	cli, err := c.NewClient()
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	val := []byte("v")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cli.Write(ctx, "k", val); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterReadTailLatency measures read latency with one crashed
// site per level — the workload hedging exists for. The hedged client
// recovers a level at the hedge delay; the unhedged client waits out the
// full client timeout whenever the uniform shuffle (or an exploration
// probe) tries the dead site first, which dominates its p99.
func BenchmarkClusterReadTailLatency(b *testing.B) {
	run := func(b *testing.B, opts ...arbor.ClientOption) {
		t, err := arbor.ParseTree("1-3-3")
		if err != nil {
			b.Fatal(err)
		}
		c, err := arbor.NewCluster(t, arbor.WithSeed(1), arbor.WithClientTimeout(40*time.Millisecond))
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		cli, err := c.NewClient(opts...)
		if err != nil {
			b.Fatal(err)
		}
		ctx := context.Background()
		if _, err := cli.Write(ctx, "k", []byte("v")); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 5; i++ { // warm the latency estimates
			if _, err := cli.Read(ctx, "k"); err != nil {
				b.Fatal(err)
			}
		}
		proto := c.Protocol()
		for u := 0; u < proto.NumPhysicalLevels(); u++ {
			if err := c.Crash(proto.LevelSites(u)[0]); err != nil {
				b.Fatal(err)
			}
		}
		durs := make([]time.Duration, 0, b.N)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			start := time.Now()
			if _, err := cli.Read(ctx, "k"); err != nil {
				b.Fatal(err)
			}
			durs = append(durs, time.Since(start))
		}
		b.StopTimer()
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		p99 := durs[len(durs)*99/100]
		b.ReportMetric(float64(p99.Nanoseconds())/1e6, "p99-ms")
		b.ReportMetric(float64(durs[len(durs)/2].Nanoseconds())/1e6, "p50-ms")
	}
	b.Run("hedged", func(b *testing.B) {
		run(b, arbor.WithHedgeDelay(2*time.Millisecond))
	})
	b.Run("unhedged", func(b *testing.B) {
		run(b, arbor.WithHedging(false))
	})
}
