package arbor_test

import (
	"context"
	"errors"
	"math"
	"testing"

	"arbor"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	tr, err := arbor.ParseTree("1-3-5")
	if err != nil {
		t.Fatal(err)
	}
	if err := arbor.ValidateTree(tr); err != nil {
		t.Fatal(err)
	}
	a := arbor.Analyze(tr)
	if a.ReadCost != 2 || math.Abs(a.WriteCostAvg-4) > 1e-12 {
		t.Errorf("analysis = %+v", a)
	}

	c, err := arbor.NewCluster(tr, arbor.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := cli.Write(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	rd, err := cli.Read(ctx, "k")
	if err != nil {
		t.Fatal(err)
	}
	if string(rd.Value) != "v" {
		t.Errorf("read %q", rd.Value)
	}
	if _, err := cli.Read(ctx, "other"); !errors.Is(err, arbor.ErrNotFound) {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
}

func TestFacadeBuilders(t *testing.T) {
	if tr, err := arbor.NewTree(3, 5); err != nil || tr.N() != 8 {
		t.Errorf("NewTree: %v %v", tr, err)
	}
	if tr, err := arbor.Algorithm1(100); err != nil || tr.N() != 100 {
		t.Errorf("Algorithm1: %v %v", tr, err)
	}
	if tr, err := arbor.MostlyRead(10); err != nil || tr.NumPhysicalLevels() != 1 {
		t.Errorf("MostlyRead: %v %v", tr, err)
	}
	if tr, err := arbor.MostlyWrite(11); err != nil || tr.NumPhysicalLevels() != 5 {
		t.Errorf("MostlyWrite: %v %v", tr, err)
	}
}

func TestFacadeAdvise(t *testing.T) {
	adv, err := arbor.Advise(64, 0.9, 0.9, arbor.MinimizeLoad)
	if err != nil {
		t.Fatal(err)
	}
	if adv.Tree == nil || adv.Tree.N() != 64 {
		t.Errorf("advice = %+v", adv)
	}
}
