package arbor_test

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"arbor"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	tr, err := arbor.ParseTree("1-3-5")
	if err != nil {
		t.Fatal(err)
	}
	if err := arbor.ValidateTree(tr); err != nil {
		t.Fatal(err)
	}
	a := arbor.Analyze(tr)
	if a.ReadCost != 2 || math.Abs(a.WriteCostAvg-4) > 1e-12 {
		t.Errorf("analysis = %+v", a)
	}

	c, err := arbor.NewCluster(tr, arbor.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := cli.Write(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	rd, err := cli.Read(ctx, "k")
	if err != nil {
		t.Fatal(err)
	}
	if string(rd.Value) != "v" {
		t.Errorf("read %q", rd.Value)
	}
	if _, err := cli.Read(ctx, "other"); !errors.Is(err, arbor.ErrNotFound) {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
}

func TestFacadeBuilders(t *testing.T) {
	if tr, err := arbor.NewTree(3, 5); err != nil || tr.N() != 8 {
		t.Errorf("NewTree: %v %v", tr, err)
	}
	if tr, err := arbor.Algorithm1(100); err != nil || tr.N() != 100 {
		t.Errorf("Algorithm1: %v %v", tr, err)
	}
	if tr, err := arbor.MostlyRead(10); err != nil || tr.NumPhysicalLevels() != 1 {
		t.Errorf("MostlyRead: %v %v", tr, err)
	}
	if tr, err := arbor.MostlyWrite(11); err != nil || tr.NumPhysicalLevels() != 5 {
		t.Errorf("MostlyWrite: %v %v", tr, err)
	}
}

func TestFacadeAdvise(t *testing.T) {
	adv, err := arbor.Advise(64, 0.9, 0.9, arbor.MinimizeLoad)
	if err != nil {
		t.Fatal(err)
	}
	if adv.Tree == nil || adv.Tree.N() != 64 {
		t.Errorf("advice = %+v", adv)
	}
}

// TestFacadeClientOptions exercises the client-construction and
// per-operation option surface re-exported by the facade.
func TestFacadeClientOptions(t *testing.T) {
	tr, err := arbor.ParseTree("1-2-3")
	if err != nil {
		t.Fatal(err)
	}
	c, err := arbor.NewCluster(tr, arbor.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cli, err := c.NewClient(
		arbor.WithTimeout(150*time.Millisecond),
		arbor.WithClientSeed(7),
		arbor.WithCommitRetries(2),
		arbor.WithReadRepair(true),
		arbor.WithHedgeDelay(3*time.Millisecond),
		arbor.WithHedging(true),
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	wr, err := cli.Write(ctx, "k", []byte("v"), arbor.WriteToLevel(1))
	if err != nil {
		t.Fatal(err)
	}
	if wr.Level != 1 {
		t.Errorf("pinned write landed on level %d, want 1", wr.Level)
	}
	if _, err := cli.Write(ctx, "k", []byte("v2"), arbor.WriteWithoutHedge()); err != nil {
		t.Fatal(err)
	}
	rd, err := cli.Read(ctx, "k", arbor.ReadWithoutHedge())
	if err != nil || string(rd.Value) != "v2" {
		t.Fatalf("ReadWithoutHedge = %q, %v", rd.Value, err)
	}
	if rd, err = cli.Read(ctx, "k", arbor.ReadWithHedgeDelay(time.Millisecond)); err != nil || string(rd.Value) != "v2" {
		t.Fatalf("ReadWithHedgeDelay = %q, %v", rd.Value, err)
	}
}

// TestFacadeErrTimeoutMatching: unavailability errors must wrap the
// underlying call timeouts, so errors.Is against the re-exported
// arbor.ErrTimeout distinguishes "replicas timed out" from other causes.
func TestFacadeErrTimeoutMatching(t *testing.T) {
	tr, err := arbor.ParseTree("1-2")
	if err != nil {
		t.Fatal(err)
	}
	c, err := arbor.NewCluster(tr, arbor.WithSeed(1), arbor.WithClientTimeout(30*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := cli.Write(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := c.CrashLevel(0); err != nil {
		t.Fatal(err)
	}
	_, err = cli.Read(ctx, "k")
	if !errors.Is(err, arbor.ErrReadUnavailable) {
		t.Fatalf("read err = %v, want ErrReadUnavailable", err)
	}
	if !errors.Is(err, arbor.ErrTimeout) {
		t.Errorf("read err = %v does not match arbor.ErrTimeout", err)
	}
	_, err = cli.Write(ctx, "k", []byte("v2"))
	if !errors.Is(err, arbor.ErrWriteUnavailable) {
		t.Fatalf("write err = %v, want ErrWriteUnavailable", err)
	}
	if !errors.Is(err, arbor.ErrTimeout) {
		t.Errorf("write err = %v does not match arbor.ErrTimeout", err)
	}
}
