// Package arbor is a Go implementation of the arbitrary tree-structured
// replica control protocol (Bahsoun, Basmadjian, Guerraoui — ICDCS 2008),
// together with the classic replica control protocols it is evaluated
// against and a goroutine-based replica cluster simulator to run it on.
//
// The protocol organizes n replicas into a tree of logical and physical
// nodes. A read quorum takes one physical node from every physical level; a
// write quorum takes all physical nodes of one physical level. Shifting
// replicas between levels tunes the protocol continuously between a
// ROWA-like read-optimized configuration and a write-optimized one, without
// changing the protocol itself.
//
// # Quick start
//
//	t, err := arbor.ParseTree("1-3-5") // logical root, levels of 3 and 5
//	a := arbor.Analyze(t)              // costs, loads, availabilities
//
//	c, err := arbor.NewCluster(t, arbor.WithSeed(1))
//	defer c.Close()
//	cli, err := c.NewClient()
//	_, err = cli.Write(ctx, "config", []byte("v1"))
//	r, err := cli.Read(ctx, "config")
//
// The subpackages remain available for advanced use: internal/tree (tree
// construction), internal/core (protocol analysis and quorum systems),
// internal/baseline (ROWA, Majority, Grid, FPP, Tree Quorum, HQC),
// internal/config (the paper's six configurations and the workload
// advisor), internal/cluster (the simulator) and internal/figures (the
// paper's tables and figures).
package arbor

import (
	"arbor/internal/adapt"
	"arbor/internal/client"
	"arbor/internal/cluster"
	"arbor/internal/config"
	"arbor/internal/core"
	"arbor/internal/obs"
	"arbor/internal/rpc"
	"arbor/internal/tree"
)

// Tree is a replica tree of logical and physical nodes.
type Tree = tree.Tree

// SiteID identifies a replica site.
type SiteID = tree.SiteID

// ParseTree parses the paper's compact tree notation, e.g. "1-3-5" for a
// logical root over physical levels of three and five replicas. See
// internal/tree.ParseSpec for the full grammar.
func ParseTree(spec string) (*Tree, error) { return tree.ParseSpec(spec) }

// NewTree builds a tree with a logical root and the given physical-level
// sizes.
func NewTree(levelSizes ...int) (*Tree, error) { return tree.PhysicalLevelSizes(levelSizes...) }

// Algorithm1 builds the paper's balanced "ARBITRARY" configuration for n
// replicas (√n physical levels; write load 1/√n, read load 1/4).
func Algorithm1(n int) (*Tree, error) { return tree.Algorithm1(n) }

// MostlyRead builds the read-optimized single-level configuration
// (ROWA-like: read cost 1, read load 1/n).
func MostlyRead(n int) (*Tree, error) { return tree.MostlyRead(n) }

// MostlyWrite builds the write-optimized configuration for odd n
// ((n−1)/2 levels; write cost ≈ 2, write load 2/(n−1)).
func MostlyWrite(n int) (*Tree, error) { return tree.MostlyWrite(n) }

// ValidateTree checks the paper's Assumption 3.1 (non-decreasing physical
// level sizes below the root).
func ValidateTree(t *Tree) error { return tree.ValidateAssumption31(t) }

// Analysis carries a tree's closed-form protocol metrics: communication
// costs, optimal system loads and availability functions.
type Analysis = core.Analysis

// Analyze computes the protocol's closed-form metrics for a tree.
func Analyze(t *Tree) Analysis { return core.Analyze(t) }

// Advice is the configuration advisor's recommendation.
type Advice = config.Advice

// Objective selects what the advisor minimizes.
type Objective = config.Objective

// Advisor objectives.
const (
	// MinimizeLoad minimizes the workload-weighted expected system load.
	MinimizeLoad = config.MinimizeLoad
	// MinimizeCost minimizes the workload-weighted communication cost.
	MinimizeCost = config.MinimizeCost
	// MinimizeLoadCostProduct balances the two.
	MinimizeLoadCostProduct = config.MinimizeLoadCostProduct
)

// Advise picks a tree shape for n replicas given a read fraction and a
// per-replica availability p — the paper's "spectrum" tuning, mechanized.
func Advise(n int, p, readFraction float64, obj Objective) (Advice, error) {
	return config.Advise(n, p, readFraction, obj)
}

// Cluster is a running simulated replica system: one goroutine per replica,
// communicating over an in-memory network with injectable failures.
type Cluster = cluster.Cluster

// Client executes protocol reads and writes against a cluster.
type Client = client.Client

// ReadResult is the outcome of a read operation.
type ReadResult = client.ReadResult

// WriteResult is the outcome of a write operation.
type WriteResult = client.WriteResult

// Txn is a client-side transaction: buffered writes installed atomically
// (all-or-nothing) by one two-phase commit across a write quorum, with
// repeatable reads. Create with Client.NewTxn.
type Txn = client.Txn

// ClusterOption configures NewCluster.
type ClusterOption = cluster.Option

// Cluster construction options, re-exported from internal/cluster.
var (
	// WithSeed makes a cluster's randomness reproducible.
	WithSeed = cluster.WithSeed
	// WithLatency adds per-message delivery delay (base plus jitter).
	WithLatency = cluster.WithLatency
	// WithLinkLatency adds per-link delay for geographic topologies.
	WithLinkLatency = cluster.WithLinkLatency
	// WithDropProbability makes the network lossy.
	WithDropProbability = cluster.WithDropProbability
	// WithClientTimeout sets the clients' failure-detection deadline.
	WithClientTimeout = cluster.WithClientTimeout
	// WithWALDir gives every replica a write-ahead journal under the
	// directory, replayed at startup.
	WithWALDir = cluster.WithWALDir
	// WithObserver attaches an Observer: metrics from every replica,
	// client and the cluster itself, plus per-operation traces.
	WithObserver = cluster.WithObserver
	// WithCodec runs the simulated network in codec fidelity mode: every
	// message is round-tripped through the wire codec in flight.
	WithCodec = cluster.WithCodec
	// WithMaxInflight bounds each replica's admitted-but-unfinished gated
	// requests (reads and prepares; commits, aborts and recovery traffic
	// are never gated). Excess work queues briefly, then sheds with a
	// typed overload reply — reads first, prepares only when saturated.
	WithMaxInflight = cluster.WithMaxInflight
)

// Codec is a wire codec: a versioned, self-contained encoding of the
// protocol's message set. BinaryCodec is the default length-prefixed binary
// format; GobCodec keeps the legacy encoding/gob format available.
type Codec = rpc.Codec

// Wire codec constructors, re-exported from internal/rpc.
var (
	// BinaryCodec returns the hand-rolled length-prefixed binary codec.
	BinaryCodec = rpc.BinaryCodec
	// GobCodec returns the encoding/gob-based codec.
	GobCodec = rpc.GobCodec
)

// Observer bundles a metrics registry and an operation trace recorder.
// Attach one to a cluster with WithObserver; read it with
// Observer.Registry.WritePrometheus and Observer.Traces.Last.
type Observer = obs.Observer

// OpTrace is one recorded operation: every level attempted, every site
// contacted, retries, timeouts and 2PC phase outcomes with timestamps.
type OpTrace = obs.OpTrace

// DefaultTraceCapacity is the trace ring size NewObserver uses when given
// a non-positive capacity.
const DefaultTraceCapacity = obs.DefaultTraceCapacity

// NewObserver creates an Observer whose trace ring keeps the last
// traceCapacity operations (DefaultTraceCapacity when <= 0).
func NewObserver(traceCapacity int) *Observer { return obs.NewObserver(traceCapacity) }

// Client operation errors, re-exported for errors.Is matching.
var (
	// ErrReadUnavailable: some physical level had no responsive replica.
	ErrReadUnavailable = client.ErrReadUnavailable
	// ErrWriteUnavailable: no physical level could be fully prepared.
	ErrWriteUnavailable = client.ErrWriteUnavailable
	// ErrNotFound: the quorum assembled but the key was never written.
	ErrNotFound = client.ErrNotFound
	// ErrInDoubt: a write was committed at the protocol level but not
	// every quorum member acknowledged in time.
	ErrInDoubt = client.ErrInDoubt
	// ErrTimeout: a replica call's reply deadline expired (the failure
	// detector firing). Unavailability errors wrap the underlying call
	// failures, so errors.Is(err, ErrTimeout) distinguishes "replicas
	// timed out" from other causes.
	ErrTimeout = rpc.ErrTimeout
	// ErrOverloaded: a replica's admission gate shed the request with a
	// typed refusal instead of serving it. A clean failure — never
	// in-doubt — carrying an advisory retry-after hint the client's
	// backoff honors.
	ErrOverloaded = client.ErrOverloaded
)

// ClientOption configures a client created by Cluster.NewClient.
type ClientOption = client.Option

// Client construction options, re-exported from internal/client. The
// cluster's own timeout/seed/observer are the defaults; these override
// them per client.
var (
	// WithTimeout sets the client's per-request reply deadline (its
	// failure detector).
	WithTimeout = client.WithTimeout
	// WithClientSeed fixes the client's quorum-selection randomness.
	WithClientSeed = client.WithSeed
	// WithCommitRetries sets how many times an unacknowledged commit is
	// re-sent before a write is reported in doubt.
	WithCommitRetries = client.WithCommitRetries
	// WithReadRepair makes reads push the freshest observed value back to
	// stale replicas.
	WithReadRepair = client.WithReadRepair
	// WithHedgeDelay sets how long a level probe may be outstanding
	// before a hedged backup probe goes to the next candidate site.
	WithHedgeDelay = client.WithHedgeDelay
	// WithHedging enables or disables hedged backup probes (default on).
	WithHedging = client.WithHedging
	// WithRetryBudget caps the client's retry amplification: level
	// fallbacks, commit re-sends and hedged probes spend from a token
	// bucket earning perOp tokens per operation up to burst. Disabled by
	// default; first attempts are never gated.
	WithRetryBudget = client.WithRetryBudget
	// WithOpBudget gives every operation that arrives without a context
	// deadline a default end-to-end budget, propagated on the wire so
	// replicas can fast-fail work whose deadline already passed.
	WithOpBudget = client.WithOpBudget
)

// ReadOption adjusts a single Client.Read call; WriteOption adjusts a
// single Client.Write call. Both leave the client's defaults untouched.
type (
	ReadOption  = client.ReadOption
	WriteOption = client.WriteOption
)

// Per-operation options, re-exported from internal/client.
var (
	// ReadWithoutHedge disables hedged backup probes for one read.
	ReadWithoutHedge = client.ReadWithoutHedge
	// ReadWithHedgeDelay overrides the hedge delay for one read.
	ReadWithHedgeDelay = client.ReadWithHedgeDelay
	// WriteToLevel makes one write try the given physical level first.
	WriteToLevel = client.WriteToLevel
	// WriteWithoutHedge disables hedged probes for one write's version
	// discovery.
	WriteWithoutHedge = client.WriteWithoutHedge
)

// Controller is the adaptation controller: it samples the cluster's
// observed read/write mix, per-site participation and the live Eq 3.2
// theory-vs-empirical gap, and reshapes the tree through the advisor when
// the workload drifts — journaling the evidence behind every decision.
// Create with NewController; start the loop with Controller.Run or drive
// Controller.Step from a deterministic harness.
type Controller = adapt.Controller

// ControllerOption configures a Controller.
type ControllerOption = adapt.Option

// Decision is one adaptation journal entry: the full evidence snapshot
// behind one act-or-hold verdict.
type Decision = adapt.Decision

// ControllerState is a point-in-time summary of a Controller.
type ControllerState = adapt.State

// Adaptation controller options, re-exported from internal/adapt.
var (
	// WithAdaptInterval sets the controller's evaluation period.
	WithAdaptInterval = adapt.WithInterval
	// WithAdaptWindow sets the observation window length in samples.
	WithAdaptWindow = adapt.WithWindow
	// WithAdaptCooldown sets the minimum time between migrations.
	WithAdaptCooldown = adapt.WithCooldown
	// WithAdaptAvailability sets the advisor's availability assumption.
	WithAdaptAvailability = adapt.WithAvailability
	// WithAdaptObjective sets the advisor objective.
	WithAdaptObjective = adapt.WithObjective
	// WithAdaptMinLevelDelta damps reconfiguration oscillation.
	WithAdaptMinLevelDelta = adapt.WithMinLevelDelta
	// WithAdaptEnabled sets the initial enabled state (default off).
	WithAdaptEnabled = adapt.WithEnabled
)

// NewController builds an adaptation controller bound to the cluster.
func NewController(c *Cluster, opts ...ControllerOption) (*Controller, error) {
	return adapt.New(c, opts...)
}

// NewCluster builds and starts a simulated cluster for the tree.
func NewCluster(t *Tree, opts ...ClusterOption) (*Cluster, error) {
	return cluster.New(t, opts...)
}
