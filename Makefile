# Convenience targets for the arbor repository.

GO ?= go

.PHONY: all build vet lint test race bench cover figures clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project-specific static analysis (internal/lint via cmd/arborvet); runs
# alongside go vet, not instead of it.
lint:
	$(GO) run ./cmd/arborvet ./...

test:
	$(GO) test ./...

race:
	$(GO) test ./... -race

bench:
	$(GO) test -bench=. -benchmem ./...

cover:
	$(GO) test ./... -coverprofile=cover.out && $(GO) tool cover -func=cover.out | tail -1

# Regenerate every table and figure of the paper.
figures:
	$(GO) run ./cmd/paperfigs

clean:
	rm -f cover.out test_output.txt bench_output.txt
