# Convenience targets for the arbor repository.

GO ?= go

.PHONY: all build vet lint lint-json test race bench bench-snapshot bench-diff cover figures scenarios clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project-specific static analysis (internal/lint via cmd/arborvet); runs
# alongside go vet, not instead of it. The wall-time budget keeps the
# flow-sensitive analyzers honest: lint must stay cheap enough to run on
# every commit, or it stops being run.
LINT_BUDGET ?= 90s
lint:
	$(GO) run ./cmd/arborvet -budget $(LINT_BUDGET) ./...

# Machine-readable findings for CI artifacts and baselines.
lint-json:
	$(GO) run ./cmd/arborvet -json ./...

test:
	$(GO) test ./...

race:
	$(GO) test ./... -race

bench:
	$(GO) test -bench=. -benchmem ./...

# Capture the per-PR perf snapshot (read/write latency + throughput of the
# live-cluster benchmarks) as JSON. Bump SNAPSHOT per PR: BENCH_010.json …
SNAPSHOT ?= BENCH_009.json
bench-snapshot:
	$(GO) test -run '^$$' -bench 'BenchmarkCluster|BenchmarkTxn' -benchmem . \
		| $(GO) run ./cmd/benchsnap -o $(SNAPSHOT)

# Compare a fresh snapshot against the committed baseline; WARN (never fail)
# on throughput regressions beyond 25%.
BASELINE ?= BENCH_009.json
bench-diff:
	$(GO) test -run '^$$' -bench 'BenchmarkCluster|BenchmarkTxn' -benchmem . \
		| $(GO) run ./cmd/benchsnap -o /tmp/bench_current.json
	$(GO) run ./cmd/benchsnap -diff $(BASELINE) /tmp/bench_current.json

cover:
	$(GO) test ./... -coverprofile=cover.out && $(GO) tool cover -func=cover.out | tail -1

# Regenerate every table and figure of the paper.
figures:
	$(GO) run ./cmd/paperfigs

# Replay the checked-in scenario corpus (scenarios/*.arb) through the
# deterministic harness and check every expect assertion. Failure
# artifacts (reproducer + decision journal) land in SCENARIO_ARTIFACTS.
SCENARIO_ARTIFACTS ?= .
scenarios:
	$(GO) run ./cmd/arborsim -scenario scenarios -artifacts $(SCENARIO_ARTIFACTS)

clean:
	rm -f cover.out test_output.txt bench_output.txt
