# Convenience targets for the arbor repository.

GO ?= go

.PHONY: all build vet test race bench cover figures clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test ./... -race

bench:
	$(GO) test -bench=. -benchmem ./...

cover:
	$(GO) test ./... -coverprofile=cover.out && $(GO) tool cover -func=cover.out | tail -1

# Regenerate every table and figure of the paper.
figures:
	$(GO) run ./cmd/paperfigs

clean:
	rm -f cover.out test_output.txt bench_output.txt
