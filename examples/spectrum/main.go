// Spectrum: the paper's headline capability — reconfiguring the protocol
// for a changing read/write mix by reshaping the tree, with no protocol
// change. The advisor sweeps read fractions from write-heavy telemetry
// ingestion to read-heavy configuration serving and prints the tree it
// picks for each, showing the continuous MOSTLY-WRITE → ARBITRARY →
// MOSTLY-READ spectrum.
package main

import (
	"fmt"
	"log"

	"arbor"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		n = 100 // replicas
		p = 0.9 // per-replica availability
	)
	fmt.Printf("advisor recommendations for n=%d replicas (p=%.1f), objective: expected load\n\n", n, p)
	fmt.Printf("%-12s %-22s %8s %9s %10s %11s\n",
		"read mix", "chosen tree", "levels", "read cost", "write cost", "load score")

	for _, readFraction := range []float64{0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99} {
		adv, err := arbor.Advise(n, p, readFraction, arbor.MinimizeLoad)
		if err != nil {
			return err
		}
		spec := adv.Tree.Spec()
		if len(spec) > 22 {
			spec = spec[:19] + "..."
		}
		fmt.Printf("%10.0f%%  %-22s %8d %9d %10.1f %11.4f\n",
			readFraction*100, spec, adv.Tree.NumPhysicalLevels(),
			adv.Analysis.ReadCost, adv.Analysis.WriteCostAvg, adv.Score)
	}

	fmt.Println("\nreshaping the tree is the whole reconfiguration: the same read/write")
	fmt.Println("quorum rules (one per level / all of one level) apply at every point.")

	// Show the two extremes explicitly.
	mr, err := arbor.MostlyRead(n)
	if err != nil {
		return err
	}
	mw, err := arbor.MostlyWrite(n + 1)
	if err != nil {
		return err
	}
	bal, err := arbor.Algorithm1(n)
	if err != nil {
		return err
	}
	fmt.Println("\nnamed configurations at the extremes and middle:")
	for _, t := range []*arbor.Tree{mr, bal, mw} {
		a := arbor.Analyze(t)
		fmt.Printf("  %-28s read cost %3d load %.3f | write cost %6.1f load %.3f\n",
			shorten(t.Spec()), a.ReadCost, a.ReadLoad, a.WriteCostAvg, a.WriteLoad)
	}
	return nil
}

func shorten(s string) string {
	if len(s) > 28 {
		return s[:25] + "..."
	}
	return s
}
