// Quickstart: build the paper's example tree, inspect the protocol's
// predicted metrics, then run real quorum reads and writes against a
// simulated cluster.
package main

import (
	"context"
	"fmt"
	"log"

	"arbor"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The paper's running example: a logical root over physical levels of
	// three and five replicas ("1-3-5", Figure 1 / §3.4).
	t, err := arbor.ParseTree("1-3-5")
	if err != nil {
		return err
	}
	fmt.Println("tree:", t)

	// Closed-form protocol metrics (§3.2).
	a := arbor.Analyze(t)
	const p = 0.7
	fmt.Printf("read:  cost %d, optimal load %.3f, availability(%.1f) %.3f\n",
		a.ReadCost, a.ReadLoad, p, a.ReadAvailability(p))
	fmt.Printf("write: cost %.1f, optimal load %.3f, availability(%.1f) %.3f\n",
		a.WriteCostAvg, a.WriteLoad, p, a.WriteAvailability(p))

	// Spin up one goroutine per replica and run the protocol for real.
	c, err := arbor.NewCluster(t, arbor.WithSeed(1))
	if err != nil {
		return err
	}
	defer c.Close()

	cli, err := c.NewClient()
	if err != nil {
		return err
	}
	ctx := context.Background()

	wr, err := cli.Write(ctx, "greeting", []byte("hello, quorums"))
	if err != nil {
		return err
	}
	fmt.Printf("write installed %s on physical level %d, touching %d replicas\n",
		wr.TS, wr.Level, wr.Contacts)

	rd, err := cli.Read(ctx, "greeting")
	if err != nil {
		return err
	}
	fmt.Printf("read returned %q (timestamp %s) touching %d replicas\n",
		rd.Value, rd.TS, rd.Contacts)
	return nil
}
