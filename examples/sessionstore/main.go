// Sessionstore: a realistic mixed workload — a web session store with 80%
// reads — run against two configurations of the same protocol, comparing
// measured throughput, per-operation cost, and the busiest replica's share
// (the system load the paper optimizes). The balanced Algorithm 1 tree
// spreads write load ~√n-fold better than the ROWA-like single-level tree
// while keeping reads cheap.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"time"

	"arbor"
)

const (
	replicas     = 64
	operations   = 3000
	readFraction = 0.8
	sessions     = 50
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	mostlyRead, err := arbor.MostlyRead(replicas)
	if err != nil {
		return err
	}
	balanced, err := arbor.Algorithm1(replicas)
	if err != nil {
		return err
	}
	fmt.Printf("session store: %d replicas, %d ops, %.0f%% reads\n\n",
		replicas, operations, readFraction*100)

	for _, cfg := range []struct {
		name string
		tree *arbor.Tree
	}{
		{name: "MOSTLY-READ (single level)", tree: mostlyRead},
		{name: "ARBITRARY (Algorithm 1)", tree: balanced},
	} {
		if err := runConfig(cfg.name, cfg.tree); err != nil {
			return err
		}
	}
	return nil
}

func runConfig(name string, t *arbor.Tree) error {
	c, err := arbor.NewCluster(t, arbor.WithSeed(42))
	if err != nil {
		return err
	}
	defer c.Close()
	cli, err := c.NewClient()
	if err != nil {
		return err
	}
	ctx := context.Background()
	rng := rand.New(rand.NewSource(7))

	var readContacts, writeContacts, reads, writes int
	start := time.Now()
	for i := 0; i < operations; i++ {
		key := fmt.Sprintf("session-%d", rng.Intn(sessions))
		if rng.Float64() < readFraction {
			rd, err := cli.Read(ctx, key)
			if err != nil && !errors.Is(err, arbor.ErrNotFound) {
				return fmt.Errorf("%s: read: %w", name, err)
			}
			readContacts += rd.Contacts
			reads++
			continue
		}
		wr, err := cli.Write(ctx, key, []byte("cookie-data"))
		if err != nil {
			return fmt.Errorf("%s: write: %w", name, err)
		}
		writeContacts += wr.Contacts
		writes++
	}
	elapsed := time.Since(start)

	a := arbor.Analyze(t)
	fmt.Printf("%s — %s\n", name, t)
	fmt.Printf("  throughput: %.0f ops/s (%d reads, %d writes in %v)\n",
		float64(operations)/elapsed.Seconds(), reads, writes, elapsed.Round(time.Millisecond))
	fmt.Printf("  avg read contacts:  %.2f (theory %d)\n",
		float64(readContacts)/float64(reads), a.ReadCost)
	fmt.Printf("  avg write contacts: %.2f (theory %d + %.1f for version discovery + quorum)\n",
		float64(writeContacts)/float64(writes), a.ReadCost, a.WriteCostAvg)
	fmt.Printf("  optimal write load: %.4f — busiest replica sees this fraction of writes\n\n",
		a.WriteLoad)
	return nil
}
