// Tcpcluster: the identical protocol stack over real loopback TCP sockets
// with the binary wire codec, wired layer by layer (transport → replicas →
// client) instead of through the cluster convenience wrapper — showing the
// components compose against any transport.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"arbor/internal/client"
	"arbor/internal/core"
	"arbor/internal/replica"
	"arbor/internal/transport"
	"arbor/internal/tree"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	t, err := tree.ParseSpec("1-2-4")
	if err != nil {
		return err
	}
	proto, err := core.New(t)
	if err != nil {
		return err
	}

	// One TCP listener per replica, all on loopback ephemeral ports.
	net := transport.NewTCPNetwork()
	defer net.Close()
	var replicas []*replica.Replica
	for _, site := range t.Sites() {
		ep, err := net.Listen(transport.Addr(site))
		if err != nil {
			return err
		}
		r := replica.New(int(site), ep)
		r.Start()
		replicas = append(replicas, r)
	}
	defer func() {
		for _, r := range replicas {
			r.Stop()
		}
	}()
	fmt.Printf("started %d replicas on TCP loopback (%s)\n", t.N(), t.Spec())

	// The client is dial-only: it needs no listener, replies come back over
	// the multiplexed connections it opens.
	cliEP, err := net.Dial(-1)
	if err != nil {
		return err
	}
	cli := client.New(-1, cliEP, proto, client.WithTimeout(500*time.Millisecond))
	defer cli.Close()

	ctx := context.Background()
	start := time.Now()
	const ops = 50
	for i := 0; i < ops; i++ {
		if _, err := cli.Write(ctx, "counter", []byte(fmt.Sprintf("%d", i))); err != nil {
			return fmt.Errorf("write %d: %w", i, err)
		}
	}
	rd, err := cli.Read(ctx, "counter")
	if err != nil {
		return err
	}
	fmt.Printf("%d quorum writes + 1 read over TCP in %v\n", ops, time.Since(start).Round(time.Millisecond))
	fmt.Printf("counter = %s (version %s), read touched %d replicas\n", rd.Value, rd.TS, rd.Contacts)

	// Crash a replica: the quorum logic behaves identically over TCP.
	replicas[0].Crash()
	wr, err := cli.Write(ctx, "counter", []byte("final"))
	if err != nil {
		return err
	}
	fmt.Printf("after crashing site 1, write re-routed to level %d\n", wr.Level)
	return nil
}
