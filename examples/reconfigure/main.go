// Reconfigure: live adaptation to a workload shift. A cluster starts in a
// read-optimized single-level shape, the workload turns write-heavy, and
// the operator reshapes the SAME replicas into a write-friendly multi-level
// tree — the paper's "no need to implement a new protocol whenever the
// frequencies of read and write operations change".
package main

import (
	"context"
	"fmt"
	"log"

	"arbor"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const n = 16
	readShape, err := arbor.MostlyRead(n) // 1-16
	if err != nil {
		return err
	}
	c, err := arbor.NewCluster(readShape, arbor.WithSeed(3))
	if err != nil {
		return err
	}
	defer c.Close()
	cli, err := c.NewClient()
	if err != nil {
		return err
	}
	ctx := context.Background()

	fmt.Printf("phase 1 — read-heavy service on %s\n", c.Tree().Spec())
	a := arbor.Analyze(c.Tree())
	fmt.Printf("  read cost %d, write cost %.0f (fine while writes are rare)\n",
		a.ReadCost, a.WriteCostAvg)
	for i := 0; i < 4; i++ {
		if _, err := cli.Write(ctx, fmt.Sprintf("user-%d", i), []byte("profile")); err != nil {
			return err
		}
	}
	rd, err := cli.Read(ctx, "user-0")
	if err != nil {
		return err
	}
	fmt.Printf("  read user-0 → %q touching %d replica(s)\n", rd.Value, rd.Contacts)

	// The workload turns write-heavy: ask the advisor for a better shape
	// and shift to it without stopping the cluster.
	adv, err := arbor.Advise(n, 0.9, 0.2 /* 20% reads */, arbor.MinimizeCost)
	if err != nil {
		return err
	}
	fmt.Printf("\nphase 2 — workload now 80%% writes; advisor recommends %s\n", adv.Tree.Spec())
	if err := c.Reconfigure(adv.Tree); err != nil {
		return err
	}
	a = arbor.Analyze(c.Tree())
	fmt.Printf("  after reshaping: read cost %d, write cost %.1f, write load %.3f\n",
		a.ReadCost, a.WriteCostAvg, a.WriteLoad)

	// Old data is still readable through the new quorum shapes…
	rd, err = cli.Read(ctx, "user-0")
	if err != nil {
		return err
	}
	fmt.Printf("  pre-reshape data intact: user-0 → %q\n", rd.Value)

	// …and writes now touch far fewer replicas.
	wr, err := cli.Write(ctx, "user-0", []byte("profile-v2"))
	if err != nil {
		return err
	}
	fmt.Printf("  new write touched %d replicas (was %d in the old shape)\n",
		wr.Contacts, 1+n)
	rd, err = cli.Read(ctx, "user-0")
	if err != nil {
		return err
	}
	fmt.Printf("  read-your-write: %q\n", rd.Value)
	return nil
}
