// Failover: demonstrates the protocol's availability behaviour under
// replica crashes — the property that motivated tree quorums in the first
// place. Writes survive any single crash by switching physical levels;
// reads survive as long as every level keeps one live replica; killing an
// entire level takes reads down until recovery, with no data loss.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"arbor"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	t, err := arbor.ParseTree("1-3-5")
	if err != nil {
		return err
	}
	c, err := arbor.NewCluster(t, arbor.WithSeed(7), arbor.WithClientTimeout(100*time.Millisecond))
	if err != nil {
		return err
	}
	defer c.Close()
	cli, err := c.NewClient()
	if err != nil {
		return err
	}
	ctx := context.Background()

	if _, err := cli.Write(ctx, "ledger", []byte("balance=100")); err != nil {
		return err
	}
	fmt.Println("initial write committed")

	// Crash a replica on the first physical level (sites 1–3). Level 0
	// can no longer form a write quorum, so writes fail over to level 1.
	fmt.Println("\n-- crashing site 1 (one member of physical level 0) --")
	if err := c.Crash(1); err != nil {
		return err
	}
	wr, err := cli.Write(ctx, "ledger", []byte("balance=90"))
	if err != nil {
		return err
	}
	fmt.Printf("write still succeeds, re-routed to level %d\n", wr.Level)
	rd, err := cli.Read(ctx, "ledger")
	if err != nil {
		return err
	}
	fmt.Printf("read still succeeds: %q\n", rd.Value)

	// Crash ALL of level 0: reads need one replica from every level, so
	// they become unavailable; the data is safe.
	fmt.Println("\n-- crashing all of physical level 0 --")
	for _, s := range []arbor.SiteID{2, 3} {
		if err := c.Crash(s); err != nil {
			return err
		}
	}
	if _, err := cli.Read(ctx, "ledger"); errors.Is(err, arbor.ErrReadUnavailable) {
		fmt.Println("reads unavailable, as the protocol predicts")
	} else {
		return fmt.Errorf("expected read unavailability, got %v", err)
	}

	// Recovery restores service with the last committed value intact.
	fmt.Println("\n-- recovering all replicas --")
	c.RecoverAll()
	rd, err = cli.Read(ctx, "ledger")
	if err != nil {
		return err
	}
	fmt.Printf("read after recovery: %q (no data lost)\n", rd.Value)
	return nil
}
