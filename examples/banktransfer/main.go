// Banktransfer: multi-key transactions on the quorum store. A transfer
// debits one account and credits another inside a transaction, so the two
// writes commit atomically — either both balances change or neither does —
// matching the paper's system model of transactions finished by two-phase
// commit.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"strconv"

	"arbor"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	t, err := arbor.ParseTree("1-3-5")
	if err != nil {
		return err
	}
	c, err := arbor.NewCluster(t, arbor.WithSeed(11))
	if err != nil {
		return err
	}
	defer c.Close()
	cli, err := c.NewClient()
	if err != nil {
		return err
	}
	ctx := context.Background()

	// Seed two accounts.
	if _, err := cli.Write(ctx, "acct:alice", []byte("100")); err != nil {
		return err
	}
	if _, err := cli.Write(ctx, "acct:bob", []byte("100")); err != nil {
		return err
	}
	fmt.Println("opening balances: alice=100 bob=100")

	// Transfer 30 from alice to bob, atomically.
	if err := transfer(ctx, cli, "acct:alice", "acct:bob", 30); err != nil {
		return err
	}
	if err := printBalances(ctx, cli); err != nil {
		return err
	}

	// A transfer that fails business validation aborts: no key changes.
	if err := transfer(ctx, cli, "acct:alice", "acct:bob", 1000); err != nil {
		fmt.Printf("transfer of 1000 rejected: %v\n", err)
	}
	return printBalances(ctx, cli)
}

// transfer moves amount between two accounts inside one transaction.
func transfer(ctx context.Context, cli *arbor.Client, from, to string, amount int) error {
	tx := cli.NewTxn()
	fromBal, err := readBalance(ctx, tx, from)
	if err != nil {
		tx.Abort()
		return err
	}
	toBal, err := readBalance(ctx, tx, to)
	if err != nil {
		tx.Abort()
		return err
	}
	if fromBal < amount {
		tx.Abort()
		return errors.New("insufficient funds")
	}
	if err := tx.Write(from, []byte(strconv.Itoa(fromBal-amount))); err != nil {
		tx.Abort()
		return err
	}
	if err := tx.Write(to, []byte(strconv.Itoa(toBal+amount))); err != nil {
		tx.Abort()
		return err
	}
	if err := tx.Commit(ctx); err != nil {
		return fmt.Errorf("transfer commit: %w", err)
	}
	fmt.Printf("transferred %d from %s to %s\n", amount, from, to)
	return nil
}

func readBalance(ctx context.Context, tx *arbor.Txn, key string) (int, error) {
	v, err := tx.Read(ctx, key)
	if err != nil {
		return 0, err
	}
	return strconv.Atoi(string(v))
}

func printBalances(ctx context.Context, cli *arbor.Client) error {
	for _, key := range []string{"acct:alice", "acct:bob"} {
		rd, err := cli.Read(ctx, key)
		if err != nil {
			return err
		}
		fmt.Printf("  %s = %s\n", key, rd.Value)
	}
	return nil
}
