// Autotune: closed-loop adaptation. The cluster starts read-optimized, the
// workload flips to write-heavy, and an AutoTuner watching the live
// operation mix reshapes the tree on its own — no operator involved.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"arbor"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	t, err := arbor.MostlyRead(16)
	if err != nil {
		return err
	}
	c, err := arbor.NewCluster(t, arbor.WithSeed(5))
	if err != nil {
		return err
	}
	defer c.Close()
	cli, err := c.NewClient()
	if err != nil {
		return err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	tuner := c.NewAutoTuner(
		arbor.WithTuneInterval(50*time.Millisecond),
		arbor.WithTuneMinLevelDelta(2),
	)
	tunerDone := make(chan error, 1)
	go func() { tunerDone <- tuner.Run(ctx) }()

	fmt.Printf("start: %s (read-optimized)\n", c.Tree().Spec())

	// Phase 1: the read-heavy workload the shape was chosen for.
	if _, err := cli.Write(ctx, "k", []byte("v")); err != nil {
		return err
	}
	for i := 0; i < 300; i++ {
		if _, err := cli.Read(ctx, "k"); err != nil {
			return err
		}
	}
	time.Sleep(120 * time.Millisecond)
	fmt.Printf("after read-heavy phase: %s (%d reconfigurations — none expected)\n",
		c.Tree().Spec(), tuner.Reconfigurations())

	// Phase 2: the workload flips to writes; the tuner reacts.
	deadline := time.Now().Add(5 * time.Second)
	i := 0
	for tuner.Reconfigurations() == 0 && time.Now().Before(deadline) {
		if _, err := cli.Write(ctx, fmt.Sprintf("k%d", i%4), []byte("v")); err != nil {
			return err
		}
		i++
	}
	tuner.Stop()
	if err := <-tunerDone; err != nil {
		return err
	}
	fmt.Printf("after write-heavy phase: %s (%d reconfiguration(s), %d writes issued)\n",
		c.Tree().Spec(), tuner.Reconfigurations(), i)

	// Everything written across both shapes is still there.
	rd, err := cli.Read(ctx, "k")
	if err != nil {
		return err
	}
	fmt.Printf("original key intact: %q\n", rd.Value)
	return nil
}
