// Autotune: closed-loop adaptation. The cluster starts read-optimized, the
// workload flips to write-heavy, and the adaptation controller watching the
// live operation mix reshapes the tree on its own — no operator involved.
// Every decision it takes (or declines to take) lands in its journal, which
// the example prints at the end.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"arbor"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	t, err := arbor.MostlyRead(16)
	if err != nil {
		return err
	}
	c, err := arbor.NewCluster(t, arbor.WithSeed(5))
	if err != nil {
		return err
	}
	defer c.Close()
	cli, err := c.NewClient()
	if err != nil {
		return err
	}
	ctx := context.Background()

	// The controller is driven by explicit Step calls here, so the example
	// is deterministic; production code would start ctl.Run(ctx) instead.
	ctl, err := arbor.NewController(c,
		arbor.WithAdaptInterval(50*time.Millisecond),
		arbor.WithAdaptMinLevelDelta(2),
		arbor.WithAdaptCooldown(0),
		arbor.WithAdaptEnabled(true),
	)
	if err != nil {
		return err
	}

	fmt.Printf("start: %s (read-optimized)\n", c.Tree().Spec())

	// Phase 1: the read-heavy workload the shape was chosen for. The
	// controller watches and holds — the advised tree matches the current
	// one, so every decision is a "shape fits" hold.
	if _, err := cli.Write(ctx, "k", []byte("v")); err != nil {
		return err
	}
	for tick := 0; tick < 8; tick++ {
		for i := 0; i < 30; i++ {
			if _, err := cli.Read(ctx, "k"); err != nil {
				return err
			}
		}
		ctl.Step()
	}
	fmt.Printf("after read-heavy phase: %s (%d reconfigurations — none expected)\n",
		c.Tree().Spec(), ctl.Reconfigurations())

	// Phase 2: the workload flips to writes; the window drains of reads,
	// drift accumulates past the hysteresis threshold, and the controller
	// migrates to a write-optimized shape.
	writes := 0
	for tick := 0; tick < 40 && ctl.Reconfigurations() == 0; tick++ {
		for i := 0; i < 30; i++ {
			if _, err := cli.Write(ctx, fmt.Sprintf("k%d", i%4), []byte("v")); err != nil {
				return err
			}
			writes++
		}
		ctl.Step()
	}
	fmt.Printf("after write-heavy phase: %s (%d reconfiguration(s), %d writes issued)\n",
		c.Tree().Spec(), ctl.Reconfigurations(), writes)

	// Everything written across both shapes is still there.
	rd, err := cli.Read(ctx, "k")
	if err != nil {
		return err
	}
	fmt.Printf("original key intact: %q\n", rd.Value)

	// The decision journal explains the whole run.
	fmt.Println("journal (last 3):")
	for _, d := range ctl.Journal(3) {
		fmt.Printf("  %s\n", d)
	}
	return nil
}
