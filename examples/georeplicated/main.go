// Georeplicated: the tree's physical levels mapped onto availability
// zones. With per-link WAN latencies injected, the example shows what the
// protocol's quorum shapes mean geographically: a read touches one replica
// per zone (paying the slowest zone's round trip once, in parallel), while
// a write touches every replica of a single zone — so writes can stay
// zone-local and fast while reads see a bounded WAN cost.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"arbor"
	"arbor/internal/transport"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Three zones of growing size = three physical levels: 1-2-3-4.
	t, err := arbor.NewTree(2, 3, 4)
	if err != nil {
		return err
	}

	// Zone plan: level 0 (sites 1-2) is the client's local zone; level 1
	// (sites 3-5) is 15ms away; level 2 (sites 6-9) is 35ms away.
	zoneDelay := func(site transport.Addr) time.Duration {
		switch {
		case site <= 0: // clients are local
			return 0
		case site <= 2:
			return 0
		case site <= 5:
			return 15 * time.Millisecond
		default:
			return 35 * time.Millisecond
		}
	}
	link := func(from, to transport.Addr) time.Duration {
		// One-way delay to the farther endpoint's zone.
		d := zoneDelay(from)
		if dd := zoneDelay(to); dd > d {
			d = dd
		}
		return d / 2 // half RTT per direction
	}

	c, err := arbor.NewCluster(t, arbor.WithSeed(9), arbor.WithLinkLatency(link),
		arbor.WithClientTimeout(2*time.Second))
	if err != nil {
		return err
	}
	defer c.Close()
	cli, err := c.NewClient()
	if err != nil {
		return err
	}
	ctx := context.Background()

	fmt.Printf("zones: local={1,2}  +15ms={3,4,5}  +35ms={6..9}  (tree %s)\n\n", t.Spec())

	if _, err := cli.Write(ctx, "profile", []byte("v1")); err != nil {
		return err
	}

	// Reads: one replica per zone, queried in parallel → ~one far-zone RTT.
	start := time.Now()
	rd, err := cli.Read(ctx, "profile")
	if err != nil {
		return err
	}
	fmt.Printf("read  touched %d replicas (one per zone) in %v\n",
		rd.Contacts, time.Since(start).Round(time.Millisecond))

	// Writes: version discovery (parallel, ~far RTT) + 2PC on ONE zone.
	// WriteAt pins the quorum to a chosen zone.
	start = time.Now()
	if _, err := cli.WriteAt(ctx, "profile", []byte("v2"), 0 /* local zone */); err != nil {
		return err
	}
	fmt.Printf("write pinned to the local zone:  %v\n", time.Since(start).Round(time.Millisecond))

	start = time.Now()
	if _, err := cli.WriteAt(ctx, "profile", []byte("v3"), 2 /* far zone */); err != nil {
		return err
	}
	fmt.Printf("write pinned to the far zone:    %v\n", time.Since(start).Round(time.Millisecond))

	fmt.Println("\nthe write quorum is a single zone: pinning hot keys' writes to the")
	fmt.Println("local zone (or reshaping the tree) trades WAN hops for zone capacity;")
	fmt.Println("the uniform strategy spreads them for the paper's optimal 1/|K_phy| load.")
	return nil
}
