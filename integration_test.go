package arbor_test

// Cross-feature integration: durability (WAL), live reconfiguration,
// transactions and failure handling composed through the public API, the
// way a downstream application would use them.

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"arbor"
)

func TestIntegrationDurableReshapedTransactionalStore(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	// Phase 1: a WAL-backed cluster takes transactional writes.
	t1, err := arbor.ParseTree("1-8")
	if err != nil {
		t.Fatal(err)
	}
	c1, err := arbor.NewCluster(t1, arbor.WithSeed(1), arbor.WithWALDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	cli1, err := c1.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	tx := cli1.NewTxn()
	for i := 0; i < 3; i++ {
		if err := tx.Write(fmt.Sprintf("acct-%d", i), []byte("100")); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}

	// Phase 2: reshape live (workload turned write-heavy).
	t2, err := arbor.ParseTree("1-2-2-4")
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Reconfigure(t2); err != nil {
		t.Fatal(err)
	}
	if _, err := cli1.Write(ctx, "acct-0", []byte("70")); err != nil {
		t.Fatal(err)
	}
	c1.Close()

	// Phase 3: cold restart from the WAL on the reshaped tree.
	c2, err := arbor.NewCluster(t2, arbor.WithSeed(2), arbor.WithWALDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	cli2, err := c2.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	rd, err := cli2.Read(ctx, "acct-0")
	if err != nil {
		t.Fatalf("read after WAL restart: %v", err)
	}
	if string(rd.Value) != "70" {
		t.Errorf("acct-0 = %q, want the post-reshape write", rd.Value)
	}
	for i := 1; i < 3; i++ {
		rd, err := cli2.Read(ctx, fmt.Sprintf("acct-%d", i))
		if err != nil || string(rd.Value) != "100" {
			t.Errorf("acct-%d = %q, %v", i, rd.Value, err)
		}
	}

	// Phase 4: failure handling still behaves per the protocol.
	if err := c2.CrashLevel(0); err != nil {
		t.Fatal(err)
	}
	if _, err := cli2.Read(ctx, "acct-0"); !errors.Is(err, arbor.ErrReadUnavailable) {
		t.Errorf("read with a level down = %v, want ErrReadUnavailable", err)
	}
	c2.RecoverAll()
	if _, err := cli2.Read(ctx, "acct-0"); err != nil {
		t.Errorf("read after recovery: %v", err)
	}
}

func TestIntegrationCheckpointThenWALlessRestart(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	t1, err := arbor.ParseTree("1-3-5")
	if err != nil {
		t.Fatal(err)
	}
	c1, err := arbor.NewCluster(t1, arbor.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	cli, err := c1.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Write(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := c1.Checkpoint(dir); err != nil {
		t.Fatal(err)
	}
	c1.Close()

	c2, err := arbor.NewCluster(t1, arbor.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := c2.RestoreCheckpoint(dir); err != nil {
		t.Fatal(err)
	}
	cli2, err := c2.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	rd, err := cli2.Read(ctx, "k")
	if err != nil || string(rd.Value) != "v" {
		t.Errorf("read after checkpoint restore: %q, %v", rd.Value, err)
	}
}
